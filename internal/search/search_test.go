package search

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/runner"
	"repro/internal/sched"
	"repro/internal/taskrt"
)

// coreBase is the configuration jobs are resolved against in these tests.
func coreBase() core.Config { return core.DefaultConfig(taskrt.Software) }

// lineSpace builds a 1-D search space over n core counts: a controlled grid
// where point i has cores i+1 and neighbors are exactly i-1 and i+1.
func lineSpace(t *testing.T, n int) *Space {
	t.Helper()
	cores := make([]int, n)
	for i := range cores {
		cores[i] = i + 1
	}
	sp, err := NewSpace(runner.Grid{
		Benchmarks: []string{"histogram"},
		Runtimes:   []taskrt.Kind{taskrt.Software},
		Schedulers: []string{sched.FIFO},
		Cores:      cores,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sp.Len() != n {
		t.Fatalf("space size = %d, want %d", sp.Len(), n)
	}
	return sp
}

func TestParseObjective(t *testing.T) {
	cases := []struct {
		in      string
		want    Objective
		wantErr bool
	}{
		{in: "cycles", want: Objective{Metric: "cycles"}},
		{in: "min:cycles", want: Objective{Metric: "cycles"}},
		{in: "max:cycles", want: Objective{Metric: "cycles", Maximize: true}},
		{in: " min:edp ", want: Objective{Metric: "edp"}},
		{in: "max:energy", want: Objective{Metric: "energy", Maximize: true}},
		{in: "latency_p99", want: Objective{Metric: "latency_p99"}},
		{in: "", wantErr: true},
		{in: "min:", wantErr: true},
		{in: "min:bogus", wantErr: true},
		{in: "avg:cycles", wantErr: true},
	}
	for _, tc := range cases {
		got, err := ParseObjective(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseObjective(%q) accepted, want error", tc.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseObjective(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseObjective(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
		// The String round-trip must land on the same objective.
		back, err := ParseObjective(got.String())
		if err != nil || back != got {
			t.Errorf("ParseObjective(%q).String() = %q did not round-trip", tc.in, got.String())
		}
	}
}

func TestObjectiveBetter(t *testing.T) {
	min := Objective{Metric: "cycles"}
	max := Objective{Metric: "cycles", Maximize: true}
	if !min.Better(1, 2) || min.Better(2, 1) {
		t.Error("min objective ranks backwards")
	}
	if !max.Better(2, 1) || max.Better(1, 2) {
		t.Error("max objective ranks backwards")
	}
}

// TestHalvingCorrectness runs the searcher over a known synthetic objective
// and checks the survivor set after every rung against the documented
// promotion rule: rank all successfully evaluated points (ties to the lower
// index), keep the top ceil(k/eta).
func TestHalvingCorrectness(t *testing.T) {
	const n = 12
	sp := lineSpace(t, n)
	// Synthetic objective with a unique optimum at index 8 and strictly
	// increasing cost away from it.
	f := func(i int) float64 { return float64((i - 8) * (i - 8)) }

	cfg := Config{
		Objective: Objective{Metric: "cycles"},
		Budget:    n,
		Rungs:     4,
		Eta:       2,
		Seed:      3,
	}
	s, err := New(sp, cfg)
	if err != nil {
		t.Fatal(err)
	}

	evaluated := map[int]float64{}
	rung := 0
	for {
		batch := s.Next()
		if batch == nil {
			break
		}
		rung++
		// No point may be proposed twice across the whole search.
		for _, idx := range batch {
			if _, dup := evaluated[idx]; dup {
				t.Fatalf("rung %d re-proposed index %d", rung, idx)
			}
			evaluated[idx] = f(idx)
			s.Observe(idx, f(idx), 100, false)
		}
		if rung > 1 {
			// The survivor set behind this rung must be the best
			// ceil(k/eta) of everything evaluated before it.
			before := len(evaluated) - len(batch)
			keep := (before + cfg.Eta - 1) / cfg.Eta
			got := s.Survivors()
			if len(got) != keep {
				t.Fatalf("rung %d survivors = %d, want %d", rung, len(got), keep)
			}
			// Every survivor must beat (or tie) every non-survivor that
			// was evaluated before this rung.
			inBatch := map[int]bool{}
			for _, idx := range batch {
				inBatch[idx] = true
			}
			surv := map[int]bool{}
			worst := math.Inf(-1)
			for _, idx := range got {
				surv[idx] = true
				if f(idx) > worst {
					worst = f(idx)
				}
			}
			for idx := range evaluated {
				if surv[idx] || inBatch[idx] {
					continue
				}
				if f(idx) < worst {
					t.Errorf("rung %d: non-survivor %d (%.0f) beats worst survivor (%.0f)",
						rung, idx, f(idx), worst)
				}
			}
		}
	}

	// Budget covers the whole space, so the search must have evaluated
	// everything it could within the rung cap and found the global optimum.
	best, ok := s.Best()
	if !ok {
		t.Fatal("no best point after a full search")
	}
	if best.Index != 8 {
		t.Errorf("best index = %d, want 8", best.Index)
	}
	if !s.Done() {
		t.Error("searcher not done after Next returned nil")
	}
	if got := s.Evaluated(); got > cfg.Budget {
		t.Errorf("evaluated %d points, budget %d", got, cfg.Budget)
	}

	// The leaderboard must be sorted best-first under the objective.
	board := s.Leaderboard(0)
	for i := 1; i < len(board); i++ {
		if cfg.Objective.Better(board[i].Value, board[i-1].Value) {
			t.Fatalf("leaderboard out of order at %d: %v > %v", i, board[i-1], board[i])
		}
	}
}

// TestNeighborPromotion: every rung after the first starts from survivors'
// unvisited grid neighbors before falling back to fresh samples.
func TestNeighborPromotion(t *testing.T) {
	const n = 16
	sp := lineSpace(t, n)
	s, err := New(sp, Config{
		Objective: Objective{Metric: "cycles"},
		Budget:    8,
		Rungs:     4,
		Eta:       2,
		Seed:      7,
	})
	if err != nil {
		t.Fatal(err)
	}

	seen := map[int]bool{}
	batch := s.Next()
	for _, idx := range batch {
		seen[idx] = true
		s.Observe(idx, float64(idx), 10, false)
	}
	second := s.Next()
	if second == nil {
		t.Fatal("search ended after one rung with budget left")
	}
	// With a min objective over f(i)=i, the best survivor is the smallest
	// evaluated index; its first unvisited neighbor (idx-1 or idx+1) must
	// lead the second rung.
	surv := s.Survivors()
	if len(surv) == 0 {
		t.Fatal("no survivors after rung 1")
	}
	best := surv[0]
	wantFirst := -1
	for _, cand := range []int{best - 1, best + 1} {
		if cand >= 0 && cand < n && !seen[cand] {
			wantFirst = cand
			break
		}
	}
	if wantFirst >= 0 && second[0] != wantFirst {
		t.Errorf("rung 2 starts at %d, want best survivor %d's neighbor %d",
			second[0], best, wantFirst)
	}
}

// TestSeededDeterminism: equal seeds reproduce the exact batch trajectory
// and leaderboard; different seeds start from different samples.
func TestSeededDeterminism(t *testing.T) {
	run := func(seed int64) ([][]int, []Entry) {
		sp := lineSpace(t, 20)
		s, err := New(sp, Config{
			Objective: Objective{Metric: "cycles"},
			Budget:    10,
			Rungs:     5,
			Seed:      seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		var batches [][]int
		for {
			b := s.Next()
			if b == nil {
				break
			}
			batches = append(batches, append([]int(nil), b...))
			for _, idx := range b {
				v := float64((idx*7)%13) * 3.5
				s.Observe(idx, v, int64(idx), false)
			}
		}
		return batches, s.Leaderboard(0)
	}

	b1, l1 := run(42)
	b2, l2 := run(42)
	if !reflect.DeepEqual(b1, b2) {
		t.Errorf("same seed proposed different batches:\n%v\n%v", b1, b2)
	}
	if !reflect.DeepEqual(l1, l2) {
		t.Errorf("same seed produced different leaderboards")
	}

	// Different seeds with different permutations must start differently.
	if !reflect.DeepEqual(rand.New(rand.NewSource(42)).Perm(20), rand.New(rand.NewSource(43)).Perm(20)) {
		b3, _ := run(43)
		if reflect.DeepEqual(b1[0], b3[0]) {
			t.Error("different seeds proposed an identical first rung")
		}
	}
}

// TestFailedPointsNeverRank: failed (and NaN) observations consume budget
// but are excluded from survivors, leaderboard and Best.
func TestFailedPointsNeverRank(t *testing.T) {
	sp := lineSpace(t, 6)
	s, err := New(sp, Config{
		Objective: Objective{Metric: "cycles"},
		Budget:    6,
		Rungs:     2,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	batch := s.Next()
	for i, idx := range batch {
		switch i % 3 {
		case 0:
			s.Observe(idx, 5, 1, true) // explicit failure
		case 1:
			s.Observe(idx, math.NaN(), 1, false) // NaN coerced to failure
		default:
			s.Observe(idx, float64(100+idx), 1, false)
		}
	}
	okIdx := map[int]bool{}
	for i, idx := range batch {
		if i%3 == 2 {
			okIdx[idx] = true
		}
	}
	for _, e := range s.Leaderboard(0) {
		if !okIdx[e.Index] {
			t.Errorf("failed point %d appears on the leaderboard", e.Index)
		}
	}
	if len(okIdx) == 0 {
		if _, ok := s.Best(); ok {
			t.Error("Best reported a point although every observation failed")
		}
	}
	if got := s.Evaluated(); got != len(batch) {
		t.Errorf("Evaluated() = %d, want %d (failures consume budget)", got, len(batch))
	}
}

// TestBudgetAndRungDefaults: zero-value config fields resolve to the
// documented defaults and clamps.
func TestBudgetAndRungDefaults(t *testing.T) {
	sp := lineSpace(t, 9)
	s, err := New(sp, Config{Objective: Objective{Metric: "cycles"}})
	if err != nil {
		t.Fatal(err)
	}
	cfg := s.Config()
	if cfg.Budget != 5 { // (9+1)/2
		t.Errorf("default budget = %d, want 5", cfg.Budget)
	}
	if cfg.Rungs != DefaultRungs {
		t.Errorf("default rungs = %d, want %d", cfg.Rungs, DefaultRungs)
	}
	if cfg.Eta != 2 {
		t.Errorf("default eta = %d, want 2", cfg.Eta)
	}
	if cfg.Strategy != StrategyHalving {
		t.Errorf("default strategy = %q, want %q", cfg.Strategy, StrategyHalving)
	}

	// Oversized budgets clamp to the space; rungs clamp to the budget.
	s2, err := New(sp, Config{Objective: Objective{Metric: "cycles"}, Budget: 1000, Rungs: 50})
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.Config().Budget; got != 9 {
		t.Errorf("clamped budget = %d, want 9", got)
	}
	if got := s2.Config().Rungs; got != 9 {
		t.Errorf("clamped rungs = %d, want 9", got)
	}

	// Invalid configs are rejected, not defaulted.
	bad := []Config{
		{Objective: Objective{Metric: "bogus"}},
		{},
		{Objective: Objective{Metric: "cycles"}, Strategy: "annealing"},
		{Objective: Objective{Metric: "cycles"}, BudgetCycles: -1},
	}
	for _, cfg := range bad {
		if _, err := New(sp, cfg); err == nil {
			t.Errorf("New accepted invalid config %+v", cfg)
		}
	}
}

// TestCycleBudgetStops: a cycle budget ends the search between rungs even
// with point budget remaining.
func TestCycleBudgetStops(t *testing.T) {
	sp := lineSpace(t, 12)
	s, err := New(sp, Config{
		Objective:    Objective{Metric: "cycles"},
		Budget:       12,
		Rungs:        6,
		BudgetCycles: 50,
		Seed:         2,
	})
	if err != nil {
		t.Fatal(err)
	}
	batch := s.Next()
	for _, idx := range batch {
		s.Observe(idx, 1, 40, false) // 2 points x 40 cycles >= 50
	}
	if s.Cycles() < 50 {
		t.Skipf("rung too small to exhaust the cycle budget (%d cycles)", s.Cycles())
	}
	if got := s.Next(); got != nil {
		t.Errorf("Next proposed %v after the cycle budget was spent", got)
	}
	if !s.Done() {
		t.Error("searcher not done after cycle-budget stop")
	}
}

// TestProtocolPanics: the propose/observe protocol is enforced.
func TestProtocolPanics(t *testing.T) {
	sp := lineSpace(t, 4)
	s, err := New(sp, Config{Objective: Objective{Metric: "cycles"}, Budget: 4, Rungs: 2})
	if err != nil {
		t.Fatal(err)
	}
	s.Next()

	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("Next with pending observations", func() { s.Next() })
	mustPanic("Observe of an unproposed index", func() { s.Observe(99, 1, 1, false) })
}

// TestSpaceNeighbors: neighborhood structure over a 2-D space (cores x
// granularity) is one step along exactly one dimension.
func TestSpaceNeighbors(t *testing.T) {
	sp, err := NewSpace(runner.Grid{
		Benchmarks:    []string{"histogram"},
		Runtimes:      []taskrt.Kind{taskrt.Software},
		Schedulers:    []string{sched.FIFO},
		Cores:         []int{2, 4, 8},
		Granularities: []int64{0, 100, 200},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sp.Len() != 9 {
		t.Fatalf("space size = %d, want 9", sp.Len())
	}
	// Index the space by (cores, granularity) to find the center point.
	at := map[[2]int64]int{}
	for i, j := range sp.Jobs() {
		at[[2]int64{int64(j.Config(coreBase()).Machine.Cores), j.Granularity}] = i
	}
	center := at[[2]int64{4, 100}]
	got := sp.neighbors(center, nil)
	want := map[int]bool{
		at[[2]int64{2, 100}]: true,
		at[[2]int64{8, 100}]: true,
		at[[2]int64{4, 0}]:   true,
		at[[2]int64{4, 200}]: true,
	}
	if len(got) != len(want) {
		t.Fatalf("center neighbors = %v, want %d of them", got, len(want))
	}
	for _, idx := range got {
		if !want[idx] {
			t.Errorf("unexpected neighbor %d (%+v)", idx, sp.Job(idx))
		}
	}
	// A corner has exactly two neighbors in a 3x3 plane.
	corner := at[[2]int64{2, 0}]
	if got := sp.neighbors(corner, nil); len(got) != 2 {
		t.Errorf("corner neighbors = %v, want 2", got)
	}
}

package sim

// Tests pinning the two hot-path mechanisms of the engine: the inlined 4-ary
// event heap (dequeue order must be indistinguishable from the previous
// container/heap implementation, including insertion order within a tick)
// and the event free list (steady-state scheduling must recycle instead of
// allocating).

import (
	"container/heap"
	"math/rand"
	"testing"
	"testing/quick"
)

// refEvent/refHeap reimplement the engine's original container/heap event
// queue as the ordering oracle.
type refEvent struct {
	at  Time
	seq uint64
}

type refHeap []refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int)     { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)       { *h = append(*h, x.(refEvent)) }
func (h *refHeap) Pop() any         { old := *h; n := len(old); ev := old[n-1]; *h = old[:n-1]; return ev }
func (h *refHeap) push(ev refEvent) { heap.Push(h, ev) }
func (h *refHeap) pop() refEvent    { return heap.Pop(h).(refEvent) }

// drainOrder schedules the delays on a fresh engine and returns the (time,
// seq) order in which the events actually ran.
func drainOrder(t *testing.T, delays []Time) []refEvent {
	t.Helper()
	e := NewEngine()
	var order []refEvent
	for i, d := range delays {
		seq := uint64(i)
		d := d
		e.Schedule(d, func() { order = append(order, refEvent{at: e.Now(), seq: seq}) })
	}
	if _, err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return order
}

// TestFourAryHeapMatchesContainerHeap is the property test required for the
// heap replacement: under random schedules (with deliberately heavy tick
// collisions) the engine must dequeue in exactly the order the old
// container/heap implementation would have.
func TestFourAryHeapMatchesContainerHeap(t *testing.T) {
	f := func(raw []uint8) bool {
		// Map delays into a tiny range so many events share a tick and
		// the (time, seq) tie-break is exercised hard.
		delays := make([]Time, len(raw))
		ref := refHeap{}
		for i, r := range raw {
			delays[i] = Time(r % 8)
			ref.push(refEvent{at: delays[i], seq: uint64(i)})
		}
		got := drainOrder(t, delays)
		if len(got) != len(raw) {
			return false
		}
		for i := range got {
			want := ref.pop()
			if got[i] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestFourAryHeapInterleavedPushPop drives the heap through mixed
// push/pop traffic (events scheduling more events), comparing against the
// oracle at every dequeue.
func TestFourAryHeapInterleavedPushPop(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		e := NewEngine()
		ref := refHeap{}
		var seq uint64
		var got []refEvent
		var schedule func(d Time)
		schedule = func(d Time) {
			// Every Schedule call here is the engine's next sequence
			// number, so the oracle's seq mirrors the engine's exactly.
			mySeq := seq
			seq++
			ref.push(refEvent{at: e.Now() + d, seq: mySeq})
			e.Schedule(d, func() {
				got = append(got, refEvent{at: e.Now(), seq: mySeq})
				// Events spawn up to two follow-ups while the queue drains.
				if len(got) < 200 && rng.Intn(3) > 0 {
					schedule(Time(rng.Intn(5)))
					if rng.Intn(2) == 0 {
						schedule(Time(rng.Intn(50)))
					}
				}
			})
		}
		for i := 0; i < 10; i++ {
			schedule(Time(rng.Intn(20)))
		}
		if _, err := e.Run(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(got) != ref.Len() {
			t.Fatalf("trial %d: engine ran %d events, oracle holds %d", trial, len(got), ref.Len())
		}
		for i := range got {
			want := ref.pop()
			if got[i] != want {
				t.Fatalf("trial %d, event %d: ran (at=%d seq=%d), oracle says (at=%d seq=%d)",
					trial, i, got[i].at, got[i].seq, want.at, want.seq)
			}
		}
	}
}

// TestEventPoolRecycles pins the free-list behaviour: once the engine has
// warmed up, scheduling draws from the pool instead of allocating.
func TestEventPoolRecycles(t *testing.T) {
	e := NewEngine()
	const n = 64
	for i := 0; i < n; i++ {
		e.Schedule(Time(i), func() {})
	}
	if e.poolNew != n || e.poolReused != 0 {
		t.Fatalf("after cold scheduling: poolNew=%d poolReused=%d, want %d/0", e.poolNew, e.poolReused, n)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.poolResides != n {
		t.Fatalf("after drain: %d events on free list, want %d", e.poolResides, n)
	}
	// A second wave of the same size must be served entirely from the pool.
	for i := 0; i < n; i++ {
		e.Schedule(Time(i), func() {})
	}
	if e.poolNew != n {
		t.Fatalf("warm scheduling allocated fresh events: poolNew=%d, want still %d", e.poolNew, n)
	}
	if e.poolReused != n {
		t.Fatalf("warm scheduling reused %d events, want %d", e.poolReused, n)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestEventPoolDropsClosures ensures recycled events do not pin their
// callbacks (the free list must not leak closure captures).
func TestEventPoolDropsClosures(t *testing.T) {
	e := NewEngine()
	e.Schedule(0, func() {})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.pool == nil {
		t.Fatal("no recycled event on the free list")
	}
	if e.pool.fn != nil {
		t.Fatal("recycled event still references its callback")
	}
}

// TestPoolSteadyStateDoesNotAllocate measures allocation behaviour of the
// full process hot path: after warm-up, a Wait cycle performs zero
// allocations.
func TestPoolSteadyStateDoesNotAllocate(t *testing.T) {
	e := NewEngine()
	stop := false
	e.Spawn("w", func(p *Proc) {
		for !stop {
			p.Wait(1)
		}
	})
	// Warm up: start the process and let the pool fill.
	for i := 0; i < 10; i++ {
		e.Step()
	}
	allocs := testing.AllocsPerRun(200, func() {
		e.Step()
	})
	stop = true
	e.Shutdown()
	if allocs > 0 {
		t.Fatalf("steady-state Wait cycle allocates %.1f objects per event", allocs)
	}
}

package sim

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(30, func() { order = append(order, 3) })
	e.Schedule(10, func() { order = append(order, 1) })
	e.Schedule(20, func() { order = append(order, 2) })
	if _, err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestScheduleSameTimeFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { order = append(order, i) })
	}
	if _, err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := 0; i < 10; i++ {
		if order[i] != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

// Regression test: scheduling at a negative delay used to be silently
// clamped to zero, which hid caller bugs (an event meant for the simulated
// past); it now panics with a clear message.
func TestScheduleNegativeDelayPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Schedule(-5, ...) did not panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "negative delay") {
			t.Fatalf("panic = %v, want message mentioning the negative delay", r)
		}
	}()
	e.Schedule(-5, func() {})
}

func TestScheduleAtPastClamped(t *testing.T) {
	e := NewEngine()
	var at Time = -1
	e.Schedule(100, func() {
		e.ScheduleAt(50, func() { at = e.Now() })
	})
	if _, err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if at != 100 {
		t.Fatalf("past-scheduled event ran at %d, want clamped to 100", at)
	}
}

func TestRunUntilHorizon(t *testing.T) {
	e := NewEngine()
	ran := false
	e.Schedule(1000, func() { ran = true })
	end, err := e.RunUntil(500)
	if err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if ran {
		t.Fatal("event beyond horizon ran")
	}
	if end != 500 {
		t.Fatalf("end = %d, want 500", end)
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
	// Resuming the run past the horizon executes the event.
	end, err = e.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !ran || end != 1000 {
		t.Fatalf("after resume: ran=%v end=%d", ran, end)
	}
}

func TestStep(t *testing.T) {
	e := NewEngine()
	count := 0
	e.Schedule(1, func() { count++ })
	e.Schedule(2, func() { count++ })
	if !e.Step() {
		t.Fatal("Step returned false with pending events")
	}
	if count != 1 {
		t.Fatalf("count = %d, want 1", count)
	}
	if !e.Step() || count != 2 {
		t.Fatalf("second Step failed, count=%d", count)
	}
	if e.Step() {
		t.Fatal("Step returned true with empty queue")
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	var times []Time
	e.Schedule(10, func() {
		times = append(times, e.Now())
		e.Schedule(15, func() {
			times = append(times, e.Now())
		})
	})
	if _, err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(times) != 2 || times[0] != 10 || times[1] != 25 {
		t.Fatalf("times = %v, want [10 25]", times)
	}
}

func TestScheduleNilPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("Schedule(nil) did not panic")
		}
	}()
	e.Schedule(0, nil)
}

func TestProcWaitAdvancesTime(t *testing.T) {
	e := NewEngine()
	var observed []Time
	e.Spawn("waiter", func(p *Proc) {
		observed = append(observed, p.Now())
		p.Wait(100)
		observed = append(observed, p.Now())
		p.Wait(50)
		observed = append(observed, p.Now())
	})
	end, err := e.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []Time{0, 100, 150}
	for i := range want {
		if observed[i] != want[i] {
			t.Fatalf("observed = %v, want %v", observed, want)
		}
	}
	if end != 150 {
		t.Fatalf("end = %d, want 150", end)
	}
}

func TestProcWaitUntil(t *testing.T) {
	e := NewEngine()
	var at Time
	e.Spawn("p", func(p *Proc) {
		p.Wait(10)
		p.WaitUntil(200)
		at = p.Now()
		p.WaitUntil(50) // in the past: should not rewind time
		if p.Now() != 200 {
			t.Errorf("WaitUntil in the past moved time to %d", p.Now())
		}
	})
	if _, err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if at != 200 {
		t.Fatalf("at = %d, want 200", at)
	}
}

func TestTwoProcsInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		e := NewEngine()
		var log []string
		e.Spawn("a", func(p *Proc) {
			for i := 0; i < 3; i++ {
				log = append(log, "a")
				p.Wait(10)
			}
		})
		e.Spawn("b", func(p *Proc) {
			for i := 0; i < 3; i++ {
				log = append(log, "b")
				p.Wait(10)
			}
		})
		if _, err := e.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return log
	}
	first := run()
	for i := 0; i < 20; i++ {
		again := run()
		if len(again) != len(first) {
			t.Fatalf("non-deterministic length: %v vs %v", first, again)
		}
		for j := range first {
			if first[j] != again[j] {
				t.Fatalf("non-deterministic interleaving: %v vs %v", first, again)
			}
		}
	}
}

func TestSpawnAtDelaysStart(t *testing.T) {
	e := NewEngine()
	var start Time = -1
	e.SpawnAt(77, "late", func(p *Proc) { start = p.Now() })
	if _, err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if start != 77 {
		t.Fatalf("start = %d, want 77", start)
	}
}

func TestProcPanicSurfacesAsError(t *testing.T) {
	e := NewEngine()
	defer e.Shutdown()
	e.Spawn("boom", func(p *Proc) {
		p.Wait(5)
		panic("kaboom")
	})
	_, err := e.Run()
	if err == nil {
		t.Fatal("Run returned nil error after process panic")
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := NewEngine()
	defer e.Shutdown()
	s := e.NewSignal("never")
	e.Spawn("stuck", func(p *Proc) {
		s.Wait(p)
	})
	_, err := e.Run()
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
	if len(dl.Blocked) != 1 {
		t.Fatalf("blocked = %v, want 1 process", dl.Blocked)
	}
}

func TestSignalBroadcastWakesAll(t *testing.T) {
	e := NewEngine()
	s := e.NewSignal("go")
	woken := 0
	for i := 0; i < 5; i++ {
		e.Spawn("w", func(p *Proc) {
			s.Wait(p)
			woken++
		})
	}
	e.Spawn("waker", func(p *Proc) {
		p.Wait(100)
		if s.Waiting() != 5 {
			t.Errorf("waiting = %d, want 5", s.Waiting())
		}
		s.Broadcast()
	})
	if _, err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if woken != 5 {
		t.Fatalf("woken = %d, want 5", woken)
	}
}

func TestSignalNotifyWakesOneFIFO(t *testing.T) {
	e := NewEngine()
	s := e.NewSignal("one")
	var woken []string
	spawnWaiter := func(name string) {
		e.Spawn(name, func(p *Proc) {
			s.Wait(p)
			woken = append(woken, name)
		})
	}
	spawnWaiter("first")
	e.Schedule(1, func() {}) // force time separation of spawns
	spawnWaiter("second")
	e.Spawn("waker", func(p *Proc) {
		p.Wait(10)
		s.Notify()
		p.Wait(10)
		s.Notify()
	})
	if _, err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(woken) != 2 || woken[0] != "first" || woken[1] != "second" {
		t.Fatalf("woken = %v, want [first second]", woken)
	}
}

func TestSignalWaitFor(t *testing.T) {
	e := NewEngine()
	s := e.NewSignal("cond")
	counter := 0
	var proceededAt Time
	e.Spawn("consumer", func(p *Proc) {
		s.WaitFor(p, func() bool { return counter >= 3 })
		proceededAt = p.Now()
	})
	e.Spawn("producer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Wait(10)
			counter++
			s.Broadcast()
		}
	})
	if _, err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if proceededAt != 30 {
		t.Fatalf("proceeded at %d, want 30", proceededAt)
	}
}

func TestSignalWaitForAlreadyTrue(t *testing.T) {
	e := NewEngine()
	s := e.NewSignal("cond")
	ran := false
	e.Spawn("p", func(p *Proc) {
		s.WaitFor(p, func() bool { return true })
		ran = true
	})
	if _, err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !ran {
		t.Fatal("WaitFor with true condition blocked")
	}
}

func TestResourceMutualExclusion(t *testing.T) {
	e := NewEngine()
	r := e.NewResource("port")
	inside := 0
	maxInside := 0
	for i := 0; i < 8; i++ {
		e.Spawn("user", func(p *Proc) {
			r.Acquire(p)
			inside++
			if inside > maxInside {
				maxInside = inside
			}
			p.Wait(10)
			inside--
			r.Release(p)
		})
	}
	end, err := e.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if maxInside != 1 {
		t.Fatalf("maxInside = %d, want 1 (mutual exclusion violated)", maxInside)
	}
	if end != 80 {
		t.Fatalf("end = %d, want 80 (8 serialized 10-cycle sections)", end)
	}
}

func TestResourceFIFOOrder(t *testing.T) {
	e := NewEngine()
	r := e.NewResource("port")
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.SpawnAt(Time(i), "user", func(p *Proc) {
			r.Acquire(p)
			order = append(order, i)
			p.Wait(100)
			r.Release(p)
		})
	}
	if _, err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := range order {
		if order[i] != i {
			t.Fatalf("order = %v, want FIFO", order)
		}
	}
	if r.Contended() != 4 {
		t.Fatalf("contended = %d, want 4", r.Contended())
	}
}

func TestResourceTryAcquire(t *testing.T) {
	e := NewEngine()
	r := e.NewResource("port")
	var got []bool
	e.Spawn("a", func(p *Proc) {
		if !r.TryAcquire(p) {
			t.Error("first TryAcquire failed")
		}
		p.Wait(50)
		r.Release(p)
	})
	e.SpawnAt(10, "b", func(p *Proc) {
		got = append(got, r.TryAcquire(p)) // busy: false
		p.Wait(60)
		got = append(got, r.TryAcquire(p)) // free: true
		r.Release(p)
	})
	if _, err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(got) != 2 || got[0] || !got[1] {
		t.Fatalf("got = %v, want [false true]", got)
	}
}

func TestResourceReleaseByNonOwnerPanics(t *testing.T) {
	e := NewEngine()
	defer e.Shutdown()
	r := e.NewResource("port")
	e.Spawn("owner", func(p *Proc) {
		r.Acquire(p)
		p.Wait(100)
		r.Release(p)
	})
	e.SpawnAt(1, "thief", func(p *Proc) {
		r.Release(p)
	})
	if _, err := e.Run(); err == nil {
		t.Fatal("expected error from non-owner release")
	}
}

func TestShutdownUnwindsParkedProcs(t *testing.T) {
	e := NewEngine()
	s := e.NewSignal("never")
	for i := 0; i < 4; i++ {
		e.Spawn("stuck", func(p *Proc) { s.Wait(p) })
	}
	_, err := e.Run()
	if err == nil {
		t.Fatal("expected deadlock error")
	}
	e.Shutdown()
	// Calling Shutdown twice must be safe.
	e.Shutdown()
	if _, err := e.Run(); err == nil {
		t.Fatal("Run after Shutdown should fail")
	}
}

func TestEventsExecutedCounter(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 17; i++ {
		e.Schedule(Time(i), func() {})
	}
	if _, err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if e.EventsExecuted() != 17 {
		t.Fatalf("EventsExecuted = %d, want 17", e.EventsExecuted())
	}
}

// Property: for any set of non-negative delays, events fire in sorted order
// and the final clock equals the maximum delay.
func TestPropertyEventOrdering(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		e := NewEngine()
		var fired []Time
		var max Time
		for _, r := range raw {
			d := Time(r)
			if d > max {
				max = d
			}
			e.Schedule(d, func() { fired = append(fired, e.Now()) })
		}
		end, err := e.Run()
		if err != nil {
			return false
		}
		if end != max {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: a chain of Wait calls accumulates exactly the sum of its delays.
func TestPropertyWaitAccumulates(t *testing.T) {
	f := func(raw []uint8) bool {
		e := NewEngine()
		var sum Time
		for _, r := range raw {
			sum += Time(r)
		}
		var final Time = -1
		e.Spawn("p", func(p *Proc) {
			for _, r := range raw {
				p.Wait(Time(r))
			}
			final = p.Now()
		})
		end, err := e.Run()
		if err != nil {
			return false
		}
		return final == sum && end == sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: with N contending processes each holding an exclusive resource
// for d cycles, the makespan is exactly N*d.
func TestPropertyResourceSerializes(t *testing.T) {
	f := func(n uint8, d uint8) bool {
		workers := int(n%16) + 1
		hold := Time(d%100) + 1
		e := NewEngine()
		r := e.NewResource("x")
		for i := 0; i < workers; i++ {
			e.Spawn("w", func(p *Proc) {
				r.Acquire(p)
				p.Wait(hold)
				r.Release(p)
			})
		}
		end, err := e.Run()
		if err != nil {
			return false
		}
		return end == Time(workers)*hold
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestShutdownUnwindOrderDeterministic pins the order Engine.Shutdown unwinds
// parked process goroutines: spawn order, every run. The engine used to keep
// its process set in a map, so the kill order — and any cleanup side effects
// in process bodies — was randomized per run.
func TestShutdownUnwindOrderDeterministic(t *testing.T) {
	const procs = 16
	want := make([]string, procs)
	for i := range want {
		want[i] = fmt.Sprintf("p%02d", i)
	}
	for trial := 0; trial < 10; trial++ {
		e := NewEngine()
		var unwound []string
		for i := 0; i < procs; i++ {
			name := want[i]
			e.Spawn(name, func(p *Proc) {
				defer func() { unwound = append(unwound, name) }()
				p.Suspend("pinned")
			})
		}
		if _, err := e.Run(); err == nil {
			t.Fatal("expected a deadlock error with every process suspended")
		}
		e.Shutdown()
		if len(unwound) != procs {
			t.Fatalf("trial %d: unwound %d of %d processes", trial, len(unwound), procs)
		}
		for i, name := range unwound {
			if name != want[i] {
				t.Fatalf("trial %d: unwind order %v, want spawn order %v", trial, unwound, want)
			}
		}
	}
}

// Package sim provides a deterministic, process-oriented discrete-event
// simulation engine.
//
// The engine advances a virtual clock measured in cycles and executes events
// in (time, insertion-order) order. On top of the raw event queue, sim offers
// a process abstraction (Proc) in the style of SimPy: a process is ordinary
// Go code running in its own goroutine, but the engine guarantees that at
// most one process executes at any instant, so simulations are fully
// deterministic and reproducible.
//
// Processes interact with the world through blocking primitives:
//
//   - Proc.Wait advances the process by a fixed number of cycles.
//   - Signal provides condition-variable style sleeping and waking.
//   - Resource provides an exclusive, FIFO-ordered server (used, for
//     example, to model the single port of the Dependence Management Unit).
//
// The package is the substrate for the multicore machine model in
// internal/machine and the runtime systems in internal/taskrt.
package sim

import (
	"container/heap"
	"fmt"
	"sort"
	"strings"
)

// Time is simulated time expressed in clock cycles.
type Time int64

// Infinity is a time value larger than any realistic simulation horizon.
const Infinity Time = 1<<62 - 1

// event is a single entry in the engine's event queue.
type event struct {
	at    Time
	seq   uint64
	fn    func()
	index int
}

// eventHeap orders events by (time, sequence number).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulation kernel.
//
// The zero value is not usable; construct engines with NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	events  eventHeap
	procs   map[*Proc]struct{}
	killed  chan struct{}
	running *Proc
	stopped bool

	// eventCount is the total number of events executed, exposed for
	// diagnostics and engine micro-benchmarks.
	eventCount uint64

	// procFailure records the first panic raised inside a process body; it
	// is surfaced as an error from Run.
	procFailure error
}

// NewEngine returns an empty engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{
		procs:  make(map[*Proc]struct{}),
		killed: make(chan struct{}),
	}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// EventsExecuted returns the number of events the engine has executed so far.
func (e *Engine) EventsExecuted() uint64 { return e.eventCount }

// Pending returns the number of events currently scheduled.
func (e *Engine) Pending() int { return len(e.events) }

// Schedule registers fn to run delay cycles in the future. A negative delay
// is treated as zero. Schedule may be called both from outside the simulation
// (before Run) and from event callbacks or processes during the simulation.
func (e *Engine) Schedule(delay Time, fn func()) {
	if fn == nil {
		panic("sim: Schedule called with nil function")
	}
	if delay < 0 {
		delay = 0
	}
	e.scheduleAt(e.now+delay, fn)
}

// ScheduleAt registers fn to run at absolute time at. Times in the past are
// clamped to the current time.
func (e *Engine) ScheduleAt(at Time, fn func()) {
	if fn == nil {
		panic("sim: ScheduleAt called with nil function")
	}
	if at < e.now {
		at = e.now
	}
	e.scheduleAt(at, fn)
}

func (e *Engine) scheduleAt(at Time, fn func()) {
	ev := &event{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
}

// Run executes events until the event queue drains. It returns the final
// simulated time. If the queue drains while processes are still blocked on
// signals or resources, Run returns a DeadlockError describing them.
func (e *Engine) Run() (Time, error) {
	return e.RunUntil(Infinity)
}

// RunUntil executes events until the event queue drains or the clock would
// advance beyond horizon, whichever comes first.
func (e *Engine) RunUntil(horizon Time) (Time, error) {
	if e.stopped {
		return e.now, fmt.Errorf("sim: engine already shut down")
	}
	for len(e.events) > 0 {
		next := e.events[0]
		if next.at > horizon {
			e.now = horizon
			return e.now, nil
		}
		heap.Pop(&e.events)
		e.now = next.at
		e.eventCount++
		next.fn()
		if e.procFailure != nil {
			return e.now, e.procFailure
		}
	}
	if blocked := e.blockedProcs(); len(blocked) > 0 {
		return e.now, &DeadlockError{Time: e.now, Blocked: blocked}
	}
	return e.now, nil
}

// Step executes exactly one event if one is pending and reports whether an
// event was executed. It is primarily useful in tests.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	next := heap.Pop(&e.events).(*event)
	e.now = next.at
	e.eventCount++
	next.fn()
	return true
}

// Shutdown terminates the engine. Any process goroutines that are still
// parked are unwound so they do not leak. After Shutdown the engine must not
// be used again.
func (e *Engine) Shutdown() {
	if e.stopped {
		return
	}
	e.stopped = true
	// Snapshot the parked processes before waking anything: while the
	// engine holds control every live process goroutine is quiescent in
	// park, but as soon as e.killed closes they unwind concurrently and
	// write their own done flags.
	var parked []*Proc
	for p := range e.procs {
		if p.parkedNow && !p.done {
			parked = append(parked, p)
		}
	}
	close(e.killed)
	// Give every parked process a chance to unwind. Processes park on
	// their own resume channel and the shared killed channel; closing the
	// latter unparks them with errKilled, which the goroutine wrapper
	// swallows.
	for _, p := range parked {
		<-p.yield
	}
}

func (e *Engine) blockedProcs() []string {
	var out []string
	for p := range e.procs {
		if !p.done && p.parkedNow {
			out = append(out, fmt.Sprintf("%s (waiting: %s)", p.name, p.waitingOn))
		}
	}
	sort.Strings(out)
	return out
}

// DeadlockError reports processes that were still blocked when the event
// queue drained.
type DeadlockError struct {
	Time    Time
	Blocked []string
}

func (d *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at cycle %d; blocked processes: %s",
		d.Time, strings.Join(d.Blocked, ", "))
}

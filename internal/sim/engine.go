// Package sim provides a deterministic, process-oriented discrete-event
// simulation engine.
//
// The engine advances a virtual clock measured in cycles and executes events
// in (time, insertion-order) order. On top of the raw event queue, sim offers
// a process abstraction (Proc) in the style of SimPy: a process is ordinary
// Go code running in its own goroutine, but the engine guarantees that at
// most one process executes at any instant, so simulations are fully
// deterministic and reproducible.
//
// Processes interact with the world through blocking primitives:
//
//   - Proc.Wait advances the process by a fixed number of cycles.
//   - Signal provides condition-variable style sleeping and waking.
//   - Resource provides an exclusive, FIFO-ordered server (used, for
//     example, to model the single port of the Dependence Management Unit).
//
// The package is the substrate for the multicore machine model in
// internal/machine and the runtime systems in internal/taskrt.
//
// The event queue and the process handoff are the hot path of every
// simulated cycle, so both are built for speed: events are pooled on a free
// list (steady-state scheduling performs no allocation), the queue is an
// inlined 4-ary implicit heap specialized for the (Time, seq) key, and the
// engine hands control to a process through a single reusable per-process
// channel instead of a two-channel handshake.
package sim

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Time is simulated time expressed in clock cycles.
type Time int64

// Infinity is a time value larger than any realistic simulation horizon.
const Infinity Time = 1<<62 - 1

// event is a single entry in the engine's event queue. Events are engine-
// owned and recycled through a free list: one is taken from the pool on
// Schedule and returned the moment it is popped for execution, so a
// simulation's steady state schedules events without allocating.
type event struct {
	at  Time
	seq uint64
	fn  func()
	// next links events on the engine's free list while recycled. It is
	// nil for events that are live in the queue.
	next *event
}

// Engine is a discrete-event simulation kernel.
//
// The zero value is not usable; construct engines with NewEngine.
type Engine struct {
	now Time
	seq uint64

	// events is a 4-ary implicit min-heap ordered by (at, seq): children
	// of slot i live in slots 4i+1..4i+4. A 4-ary layout halves the tree
	// depth of a binary heap, and the comparisons are inlined below
	// rather than dispatched through container/heap interfaces.
	events []*event

	// pool is the free list of recycled event structs, with counters
	// exposed to tests and diagnostics.
	pool        *event
	poolNew     uint64 // events allocated fresh
	poolReused  uint64 // events taken from the free list
	poolResides int    // events currently on the free list

	// procs lists every spawned process in spawn order. A slice, not a set:
	// Shutdown unwinds parked goroutines by iterating it, and map iteration
	// order would make the unwind order (and any cleanup side effects in
	// process bodies) differ run to run.
	procs   []*Proc
	running *Proc
	stopped bool

	// eventCount is the total number of events executed, exposed for
	// diagnostics and engine micro-benchmarks.
	eventCount uint64

	// procFailure records the first panic raised inside a process body; it
	// is surfaced as an error from Run.
	procFailure error

	// haltErr, when set, stops the run loop after the event currently
	// executing; Run returns it. See Halt.
	haltErr error
}

// NewEngine returns an empty engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// EventsExecuted returns the number of events the engine has executed so far.
func (e *Engine) EventsExecuted() uint64 { return e.eventCount }

// Pending returns the number of events currently scheduled.
func (e *Engine) Pending() int { return len(e.events) }

// Schedule registers fn to run delay cycles in the future. Schedule may be
// called both from outside the simulation (before Run) and from event
// callbacks or processes during the simulation. A negative delay is a bug in
// the caller — it would have to run in the simulated past — and panics.
//
//simlint:hotpath
func (e *Engine) Schedule(delay Time, fn func()) {
	if fn == nil {
		panic("sim: Schedule called with nil function")
	}
	if delay < 0 {
		panic(fmt.Sprintf("sim: Schedule called with negative delay %d at cycle %d", delay, e.now))
	}
	e.push(e.newEvent(e.now+delay, fn))
}

// ScheduleAt registers fn to run at absolute time at. Times in the past are
// clamped to the current time.
func (e *Engine) ScheduleAt(at Time, fn func()) {
	if fn == nil {
		panic("sim: ScheduleAt called with nil function")
	}
	if at < e.now {
		at = e.now
	}
	e.push(e.newEvent(at, fn))
}

// newEvent takes an event from the free list (or allocates one) and stamps it
// with the next sequence number.
func (e *Engine) newEvent(at Time, fn func()) *event {
	ev := e.pool
	if ev != nil {
		e.pool = ev.next
		ev.next = nil
		e.poolReused++
		e.poolResides--
	} else {
		ev = &event{}
		e.poolNew++
	}
	ev.at = at
	ev.seq = e.seq
	ev.fn = fn
	e.seq++
	return ev
}

// recycle returns an executed event to the free list. The function reference
// is dropped so the pool does not pin closures (and their captures) live.
func (e *Engine) recycle(ev *event) {
	ev.fn = nil
	ev.next = e.pool
	e.pool = ev
	e.poolResides++
}

// less orders events by (time, sequence number).
func less(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push inserts ev into the 4-ary heap, sifting it up to its slot.
func (e *Engine) push(ev *event) {
	h := append(e.events, ev)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) >> 2
		p := h[parent]
		if !less(ev, p) {
			break
		}
		h[i] = p
		i = parent
	}
	h[i] = ev
	e.events = h
}

// pop removes and returns the earliest event, sifting the displaced tail
// element down. The caller must ensure the heap is non-empty.
func (e *Engine) pop() *event {
	h := e.events
	top := h[0]
	n := len(h) - 1
	moved := h[n]
	h[n] = nil
	h = h[:n]
	e.events = h
	if n > 0 {
		i := 0
		for {
			first := i<<2 + 1
			if first >= n {
				break
			}
			end := first + 4
			if end > n {
				end = n
			}
			min := first
			mv := h[first]
			for c := first + 1; c < end; c++ {
				if cv := h[c]; less(cv, mv) {
					min, mv = c, cv
				}
			}
			if !less(mv, moved) {
				break
			}
			h[i] = mv
			i = min
		}
		h[i] = moved
	}
	return top
}

// Halt requests that the run loop stop after the event that is currently
// executing, making Run (or RunUntil) return err instead of draining the
// queue. It is the engine half of cooperative cancellation: a process that
// observes an external cancellation calls Halt and then parks itself (see
// Proc.Suspend), handing control back to the run loop for good. The first
// Halt wins; later calls are ignored.
func (e *Engine) Halt(err error) {
	if err == nil {
		err = errors.New("sim: run halted")
	}
	if e.haltErr == nil {
		e.haltErr = err
	}
}

// Halted returns the error a Halt call installed, or nil.
func (e *Engine) Halted() error { return e.haltErr }

// Run executes events until the event queue drains. It returns the final
// simulated time. If the queue drains while processes are still blocked on
// signals or resources, Run returns a DeadlockError describing them.
func (e *Engine) Run() (Time, error) {
	return e.RunUntil(Infinity)
}

// RunUntil executes events until the event queue drains or the clock would
// advance beyond horizon, whichever comes first.
func (e *Engine) RunUntil(horizon Time) (Time, error) {
	if e.stopped {
		return e.now, fmt.Errorf("sim: engine already shut down")
	}
	if e.haltErr != nil {
		return e.now, e.haltErr
	}
	for len(e.events) > 0 {
		next := e.events[0]
		if next.at > horizon {
			e.now = horizon
			return e.now, nil
		}
		e.pop()
		e.now = next.at
		e.eventCount++
		fn := next.fn
		e.recycle(next)
		fn()
		if e.procFailure != nil {
			return e.now, e.procFailure
		}
		if e.haltErr != nil {
			return e.now, e.haltErr
		}
	}
	if blocked := e.blockedProcs(); len(blocked) > 0 {
		return e.now, &DeadlockError{Time: e.now, Blocked: blocked}
	}
	return e.now, nil
}

// Step executes exactly one event if one is pending and reports whether an
// event was executed. It is primarily useful in tests.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	next := e.pop()
	e.now = next.at
	e.eventCount++
	fn := next.fn
	e.recycle(next)
	fn()
	return true
}

// Shutdown terminates the engine. Any process goroutines that are still
// parked are unwound so they do not leak. After Shutdown the engine must not
// be used again.
func (e *Engine) Shutdown() {
	if e.stopped {
		return
	}
	e.stopped = true
	// Every live process goroutine is quiescent in park while the engine
	// holds control, so each can be unwound with one kill token; the
	// handoff channel synchronizes the unwind, one process at a time, in
	// spawn order so shutdown side effects are reproducible.
	for _, p := range e.procs {
		if p.parkedNow && !p.done {
			p.ch <- sigKill
			<-p.ch
		}
	}
}

func (e *Engine) blockedProcs() []string {
	var out []string
	for _, p := range e.procs {
		if !p.done && p.parkedNow {
			out = append(out, fmt.Sprintf("%s (waiting: %s)", p.name, p.waitReason()))
		}
	}
	sort.Strings(out)
	return out
}

// DeadlockError reports processes that were still blocked when the event
// queue drained.
type DeadlockError struct {
	Time    Time
	Blocked []string
}

func (d *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at cycle %d; blocked processes: %s",
		d.Time, strings.Join(d.Blocked, ", "))
}

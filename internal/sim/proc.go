package sim

import (
	"errors"
	"fmt"
	"runtime/debug"
)

// errKilled is used internally to unwind parked process goroutines when the
// engine shuts down.
var errKilled = errors.New("sim: process killed by engine shutdown")

// Proc is a simulation process: ordinary Go code that runs inside the engine
// and can block on simulated time, signals and resources. At most one process
// executes at any instant, which makes simulations deterministic.
type Proc struct {
	eng  *Engine
	name string

	// resume carries wake-ups from the engine to the process goroutine;
	// yield carries park/finish notifications back to the engine.
	resume chan struct{}
	yield  chan struct{}

	done      bool
	parkedNow bool
	waitingOn string
}

// Spawn creates a new process named name and schedules it to start at the
// current simulated time. The function fn runs in its own goroutine but only
// while the engine has handed control to it, so code inside fn does not need
// any synchronization with other processes.
func (e *Engine) Spawn(name string, fn func(*Proc)) *Proc {
	return e.SpawnAt(0, name, fn)
}

// SpawnAt is like Spawn but delays the start of the process by delay cycles.
func (e *Engine) SpawnAt(delay Time, name string, fn func(*Proc)) *Proc {
	if fn == nil {
		panic("sim: Spawn called with nil function")
	}
	p := &Proc{
		eng:    e,
		name:   name,
		resume: make(chan struct{}),
		yield:  make(chan struct{}),
	}
	e.procs[p] = struct{}{}
	e.Schedule(delay, func() {
		go p.run(fn)
		<-p.yield
	})
	return p
}

// run executes the process body and reports completion (or failure) back to
// the engine.
func (p *Proc) run(fn func(*Proc)) {
	defer func() {
		r := recover()
		if r == nil {
			p.done = true
			p.yield <- struct{}{}
			return
		}
		if err, ok := r.(error); ok && errors.Is(err, errKilled) {
			// Engine shutdown: unwind quietly. The engine is
			// draining yield channels of parked processes.
			p.done = true
			p.yield <- struct{}{}
			return
		}
		p.eng.procFailure = fmt.Errorf(
			"sim: process %q panicked: %v\n%s", p.name, r, debug.Stack())
		p.done = true
		p.yield <- struct{}{}
	}()
	fn(p)
}

// park hands control back to the engine and blocks until the engine resumes
// this process. reason is reported in deadlock diagnostics.
func (p *Proc) park(reason string) {
	p.waitingOn = reason
	p.parkedNow = true
	p.yield <- struct{}{}
	select {
	case <-p.resume:
		p.parkedNow = false
		p.waitingOn = ""
	case <-p.eng.killed:
		panic(errKilled)
	}
}

// resumeProc wakes a parked process and blocks until it parks again or
// finishes. It must only be called from event callbacks.
func (e *Engine) resumeProc(p *Proc) {
	if p.done {
		return
	}
	prev := e.running
	e.running = p
	p.resume <- struct{}{}
	<-p.yield
	e.running = prev
}

// Wait blocks the process for d cycles of simulated time. A non-positive
// duration still yields to other events scheduled at the current time.
func (p *Proc) Wait(d Time) {
	if d < 0 {
		d = 0
	}
	p.eng.Schedule(d, func() { p.eng.resumeProc(p) })
	p.park(fmt.Sprintf("wait %d cycles", d))
}

// WaitUntil blocks the process until absolute simulated time at. If at is in
// the past, WaitUntil yields once and returns.
func (p *Proc) WaitUntil(at Time) {
	d := at - p.eng.now
	p.Wait(d)
}

// Yield gives other processes and events scheduled for the current cycle a
// chance to run before this process continues.
func (p *Proc) Yield() { p.Wait(0) }

// Now returns the current simulated time.
func (p *Proc) Now() Time { return p.eng.now }

// Name returns the process name given at Spawn time.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this process belongs to.
func (p *Proc) Engine() *Engine { return p.eng }

// Done reports whether the process body has returned.
func (p *Proc) Done() bool { return p.done }

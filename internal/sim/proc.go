package sim

import (
	"errors"
	"fmt"
	"runtime/debug"
)

// errKilled is used internally to unwind parked process goroutines when the
// engine shuts down.
var errKilled = errors.New("sim: process killed by engine shutdown")

// token is the value exchanged on a process's handoff channel. Control
// strictly alternates between the engine and the process, so one unbuffered
// channel per process carries the whole protocol; the value distinguishes a
// normal resume from an engine-shutdown kill.
type token uint8

const (
	sigRun  token = iota // resume (proc side) / parked or finished (engine side)
	sigKill              // engine shutdown: unwind the process goroutine
)

// waitReasonTimer marks a process blocked in Wait; blockedProcs formats it
// together with the stored duration. Wait is the hottest park reason, so it
// must not cost a fmt.Sprintf per call.
const waitReasonTimer = "\x00timer"

// Proc is a simulation process: ordinary Go code that runs inside the engine
// and can block on simulated time, signals and resources. At most one process
// executes at any instant, which makes simulations deterministic.
type Proc struct {
	eng  *Engine
	name string

	// ch is the single handoff channel between the engine and the process
	// goroutine. Exactly one side is ever blocked on it: the engine sends
	// to transfer control to the process and then receives to take it
	// back; the process receives to wake and sends when it parks or
	// finishes.
	ch chan token

	// resumeFn is the pre-bound wake-up event, scheduled every time the
	// process must resume. Binding it once at spawn keeps Wait, Signal and
	// Resource wake-ups allocation-free.
	resumeFn func()

	done      bool
	parkedNow bool
	waitingOn string
	waitArg   Time
}

// Spawn creates a new process named name and schedules it to start at the
// current simulated time. The function fn runs in its own goroutine but only
// while the engine has handed control to it, so code inside fn does not need
// any synchronization with other processes.
func (e *Engine) Spawn(name string, fn func(*Proc)) *Proc {
	return e.SpawnAt(0, name, fn)
}

// SpawnAt is like Spawn but delays the start of the process by delay cycles.
func (e *Engine) SpawnAt(delay Time, name string, fn func(*Proc)) *Proc {
	if fn == nil {
		panic("sim: Spawn called with nil function")
	}
	p := &Proc{
		eng:  e,
		name: name,
		ch:   make(chan token),
	}
	p.resumeFn = func() { e.resumeProc(p) }
	e.procs = append(e.procs, p)
	e.Schedule(delay, func() {
		go p.run(fn)
		<-p.ch
	})
	return p
}

// run executes the process body and reports completion (or failure) back to
// the engine.
func (p *Proc) run(fn func(*Proc)) {
	defer func() {
		if r := recover(); r != nil {
			if err, ok := r.(error); !ok || !errors.Is(err, errKilled) {
				p.eng.procFailure = fmt.Errorf(
					"sim: process %q panicked: %v\n%s", p.name, r, debug.Stack())
			}
			// Engine-shutdown kills unwind quietly.
		}
		p.done = true
		p.ch <- sigRun
	}()
	fn(p)
}

// park hands control back to the engine and blocks until the engine resumes
// this process. reason is reported in deadlock diagnostics.
//
//simlint:hotpath
func (p *Proc) park(reason string) {
	p.waitingOn = reason
	p.parkedNow = true
	p.ch <- sigRun
	if <-p.ch == sigKill {
		panic(errKilled)
	}
	p.parkedNow = false
	p.waitingOn = ""
}

// waitReason renders the diagnostic description of what the process is
// blocked on. The hot park paths store precomputed strings and defer
// formatting to this (cold) accessor.
func (p *Proc) waitReason() string {
	if p.waitingOn == waitReasonTimer {
		return fmt.Sprintf("wait %d cycles", p.waitArg)
	}
	return p.waitingOn
}

// resumeProc wakes a parked process and blocks until it parks again or
// finishes. It must only be called from event callbacks.
//
//simlint:hotpath
func (e *Engine) resumeProc(p *Proc) {
	if p.done {
		return
	}
	prev := e.running
	e.running = p
	p.ch <- sigRun
	<-p.ch
	e.running = prev
}

// Suspend parks the process indefinitely: nothing ever resumes it, and its
// goroutine is unwound by Engine.Shutdown. It is the process half of
// cooperative cancellation — a process that observes an external cancellation
// calls Engine.Halt and then Suspend, so the run loop regains control and
// returns the halt error while the process stays quiescent until shutdown.
// reason is reported in diagnostics.
func (p *Proc) Suspend(reason string) {
	if reason == "" {
		reason = "suspended"
	}
	// No wake-up source is registered, so park only returns if the engine is
	// shut down (which unwinds the goroutine via a panic inside park). The
	// loop guards against a stray resume ever reaching a suspended process.
	for {
		p.park(reason)
	}
}

// Wait blocks the process for d cycles of simulated time. A non-positive
// duration still yields to other events scheduled at the current time.
// Wait is the inner loop of every simulated process: it must stay
// allocation-free (the resume closure is precomputed at spawn), which
// hotalloc enforces over Wait and everything it reaches.
//
//simlint:hotpath
func (p *Proc) Wait(d Time) {
	if d < 0 {
		d = 0
	}
	p.eng.Schedule(d, p.resumeFn)
	p.waitArg = d
	p.park(waitReasonTimer)
}

// WaitUntil blocks the process until absolute simulated time at. If at is in
// the past, WaitUntil yields once and returns.
func (p *Proc) WaitUntil(at Time) {
	d := at - p.eng.now
	p.Wait(d)
}

// Yield gives other processes and events scheduled for the current cycle a
// chance to run before this process continues.
func (p *Proc) Yield() { p.Wait(0) }

// Now returns the current simulated time.
func (p *Proc) Now() Time { return p.eng.now }

// Name returns the process name given at Spawn time.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this process belongs to.
func (p *Proc) Engine() *Engine { return p.eng }

// Done reports whether the process body has returned.
func (p *Proc) Done() bool { return p.done }

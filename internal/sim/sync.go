package sim

import "fmt"

// Signal is a condition-variable-like synchronization primitive for
// simulation processes. Processes block on a signal with Wait (or WaitFor)
// and are woken by Broadcast or Notify. Wake-ups are delivered through the
// event queue at the current simulated time, preserving determinism.
type Signal struct {
	eng     *Engine
	name    string
	waiters []*Proc

	// parkReason is precomputed so blocking on the signal does not format
	// a string on every park.
	parkReason string

	// broadcasts and notifies count wake operations, mostly for tests and
	// diagnostics.
	broadcasts uint64
	notifies   uint64
}

// NewSignal creates a named signal bound to the engine.
func (e *Engine) NewSignal(name string) *Signal {
	return &Signal{eng: e, name: name, parkReason: fmt.Sprintf("signal %q", name)}
}

// Name returns the signal's name.
func (s *Signal) Name() string { return s.name }

// Waiting returns the number of processes currently blocked on the signal.
func (s *Signal) Waiting() int { return len(s.waiters) }

// Wait blocks the process until the signal is broadcast (or the process is
// individually notified). Like condition variables, wake-ups may be spurious
// with respect to the caller's logical condition; use WaitFor to re-check a
// predicate.
func (s *Signal) Wait(p *Proc) {
	s.waiters = append(s.waiters, p)
	p.park(s.parkReason)
}

// WaitFor blocks the process until cond() evaluates to true, re-checking the
// condition every time the signal is woken. If the condition already holds,
// WaitFor returns immediately without blocking.
func (s *Signal) WaitFor(p *Proc, cond func() bool) {
	for !cond() {
		s.Wait(p)
	}
}

// Broadcast wakes every process currently waiting on the signal.
func (s *Signal) Broadcast() {
	s.broadcasts++
	if len(s.waiters) == 0 {
		return
	}
	ws := s.waiters
	s.waiters = nil
	for _, w := range ws {
		s.eng.Schedule(0, w.resumeFn)
	}
}

// Notify wakes the process that has been waiting the longest, if any.
func (s *Signal) Notify() {
	s.notifies++
	if len(s.waiters) == 0 {
		return
	}
	w := s.waiters[0]
	s.waiters = s.waiters[1:]
	s.eng.Schedule(0, w.resumeFn)
}

// Resource is an exclusive server with FIFO admission. It models hardware or
// software entities that serve one request at a time, such as the DMU
// instruction port or a lock in the runtime system.
type Resource struct {
	eng   *Engine
	name  string
	owner *Proc
	queue []*Proc

	// parkReason is precomputed; contending for a resource is on the hot
	// path of every DMU instruction.
	parkReason string

	// contended counts Acquire calls that had to wait.
	contended uint64
	acquired  uint64
}

// NewResource creates a named exclusive resource bound to the engine.
func (e *Engine) NewResource(name string) *Resource {
	return &Resource{eng: e, name: name, parkReason: fmt.Sprintf("resource %q", name)}
}

// Name returns the resource's name.
func (r *Resource) Name() string { return r.name }

// Acquire grants the process exclusive ownership of the resource, blocking in
// FIFO order if another process currently owns it.
func (r *Resource) Acquire(p *Proc) {
	r.acquired++
	if r.owner == nil {
		r.owner = p
		return
	}
	r.contended++
	r.queue = append(r.queue, p)
	p.park(r.parkReason)
}

// TryAcquire grants ownership only if the resource is currently free and
// reports whether it did.
func (r *Resource) TryAcquire(p *Proc) bool {
	if r.owner != nil {
		return false
	}
	r.acquired++
	r.owner = p
	return true
}

// Release relinquishes ownership. If other processes are queued, ownership
// transfers to the longest-waiting one and it is woken at the current time.
func (r *Resource) Release(p *Proc) {
	if r.owner != p {
		panic(fmt.Sprintf("sim: process %q released resource %q it does not own", p.name, r.name))
	}
	if len(r.queue) == 0 {
		r.owner = nil
		return
	}
	next := r.queue[0]
	r.queue = r.queue[1:]
	r.owner = next
	r.eng.Schedule(0, next.resumeFn)
}

// Owner returns the current owner, or nil if the resource is free.
func (r *Resource) Owner() *Proc { return r.owner }

// QueueLen returns the number of processes waiting for the resource.
func (r *Resource) QueueLen() int { return len(r.queue) }

// Contended returns how many Acquire calls had to wait.
func (r *Resource) Contended() uint64 { return r.contended }

// Acquisitions returns how many times the resource has been acquired.
func (r *Resource) Acquisitions() uint64 { return r.acquired }

// Package swdep implements software task-dependence tracking: the data
// structures a conventional task-based runtime system (Nanos++, OmpSs,
// OpenMP 4.0 runtimes) maintains to discover the task dependence graph from
// depend() annotations.
//
// The tracker mirrors the semantics of the DMU (internal/dmu) exactly — the
// two are validated against each other and against the golden graph in
// internal/task — but it has no capacity limits and no hardware cost model.
// The *time* cost of using it is charged by the simulation through
// machine.CostModel (SwTaskAlloc, SwDepMatch, ...); this package only reports
// the operation counts those charges are based on (dependences matched, edges
// inserted, successors woken, dependences released).
package swdep

import (
	"fmt"

	"repro/internal/task"
)

// taskState is the runtime-side record of an in-flight task.
type taskState struct {
	id        task.ID
	numPred   int
	numSucc   int
	succs     []task.ID
	deps      []uint64
	submitted bool
	finished  bool
}

// depState is the per-address dependence record (last writer + readers).
type depState struct {
	lastWriter      task.ID
	lastWriterValid bool
	readers         []task.ID
}

// CreateResult reports the work performed by CreateTask.
type CreateResult struct {
	// DepsMatched is the number of dependence annotations processed.
	DepsMatched int
	// EdgesInserted is the number of TDG edges discovered and linked.
	EdgesInserted int
	// Ready reports whether the task has no unresolved predecessors and is
	// immediately executable.
	Ready bool
	// NumSuccs is the successor count known at creation time.
	NumSuccs int
}

// FinishResult reports the work performed by FinishTask.
type FinishResult struct {
	// NewlyReady lists the successors whose predecessor count reached zero.
	NewlyReady []task.ID
	// SuccessorsWoken is the number of successor updates performed.
	SuccessorsWoken int
	// DepsReleased is the number of dependence records this task was
	// removed from.
	DepsReleased int
	// NumSuccsOf returns the successor count of each newly ready task at
	// wake-up time, aligned with NewlyReady.
	NumSuccsOf []int
}

// Tracker is the software dependence tracker.
type Tracker struct {
	tasks map[task.ID]*taskState
	deps  map[uint64]*depState

	// Counters for diagnostics and tests.
	created  int
	finished int
	edges    int
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker {
	return &Tracker{
		tasks: make(map[task.ID]*taskState),
		deps:  make(map[uint64]*depState),
	}
}

// InFlight returns the number of created-but-not-finished tasks.
func (t *Tracker) InFlight() int { return t.created - t.finished }

// EdgesCreated returns the total number of TDG edges discovered.
func (t *Tracker) EdgesCreated() int { return t.edges }

// TrackedDeps returns the number of dependence addresses currently tracked.
func (t *Tracker) TrackedDeps() int { return len(t.deps) }

// CreateTask registers a task and matches all of its dependence annotations
// in one step (the software runtime performs creation and matching in the
// same critical section). The returned result drives the simulation's cost
// charging and, if Ready is true, the task can be handed to the scheduler
// immediately.
func (t *Tracker) CreateTask(spec *task.Spec) (CreateResult, error) {
	if _, exists := t.tasks[spec.ID]; exists {
		return CreateResult{}, fmt.Errorf("swdep: task %d already created", spec.ID)
	}
	ts := &taskState{id: spec.ID}
	t.tasks[spec.ID] = ts
	t.created++

	res := CreateResult{DepsMatched: len(spec.Deps)}
	for _, d := range spec.Deps {
		ds := t.deps[d.Addr]
		if ds == nil {
			ds = &depState{lastWriter: task.NoTask}
			t.deps[d.Addr] = ds
		}
		ts.deps = append(ts.deps, d.Addr)
		if ds.lastWriterValid && ds.lastWriter != spec.ID {
			t.addEdge(ds.lastWriter, ts)
			res.EdgesInserted++
		}
		if d.Dir.IsRead() {
			ds.readers = append(ds.readers, spec.ID)
			continue
		}
		for _, r := range ds.readers {
			if r != spec.ID {
				t.addEdge(r, ts)
				res.EdgesInserted++
			}
		}
		ds.readers = ds.readers[:0]
		ds.lastWriter = spec.ID
		ds.lastWriterValid = true
	}
	ts.submitted = true
	res.Ready = ts.numPred == 0
	res.NumSuccs = ts.numSucc
	return res, nil
}

func (t *Tracker) addEdge(from task.ID, to *taskState) {
	pred := t.tasks[from]
	if pred == nil || pred.finished {
		// The predecessor already retired; its output is available, so no
		// edge is needed. This mirrors the DMU, which frees dependence
		// state when the last writer finishes and no readers remain.
		return
	}
	pred.succs = append(pred.succs, to.id)
	pred.numSucc++
	to.numPred++
	t.edges++
}

// NumSuccs returns the current successor count of an in-flight task.
func (t *Tracker) NumSuccs(id task.ID) int {
	ts := t.tasks[id]
	if ts == nil {
		return 0
	}
	return ts.numSucc
}

// FinishTask retires a task: successors lose one predecessor (those reaching
// zero are returned as newly ready), and the task is detached from the
// dependence records it participated in. Records with no remaining state are
// deleted, bounding the tracker's footprint like the DMU's Algorithm 2.
func (t *Tracker) FinishTask(id task.ID) (FinishResult, error) {
	ts := t.tasks[id]
	if ts == nil {
		return FinishResult{}, fmt.Errorf("swdep: finish of unknown task %d", id)
	}
	if ts.finished {
		return FinishResult{}, fmt.Errorf("swdep: task %d finished twice", id)
	}
	ts.finished = true
	t.finished++

	var res FinishResult
	for _, s := range ts.succs {
		succ := t.tasks[s]
		succ.numPred--
		res.SuccessorsWoken++
		if succ.numPred == 0 {
			res.NewlyReady = append(res.NewlyReady, s)
			res.NumSuccsOf = append(res.NumSuccsOf, succ.numSucc)
		}
	}
	for _, addr := range ts.deps {
		ds := t.deps[addr]
		if ds == nil {
			continue
		}
		res.DepsReleased++
		for i, r := range ds.readers {
			if r == id {
				ds.readers = append(ds.readers[:i], ds.readers[i+1:]...)
				break
			}
		}
		if ds.lastWriterValid && ds.lastWriter == id {
			ds.lastWriterValid = false
		}
		if !ds.lastWriterValid && len(ds.readers) == 0 {
			delete(t.deps, addr)
		}
	}
	delete(t.tasks, id)
	return res, nil
}

// Quiescent reports whether the tracker holds no in-flight state.
func (t *Tracker) Quiescent() bool {
	return len(t.tasks) == 0 && len(t.deps) == 0
}

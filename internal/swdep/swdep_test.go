package swdep

import (
	"testing"
	"testing/quick"

	"repro/internal/task"
)

func spec(id task.ID, deps ...task.Dep) *task.Spec {
	return &task.Spec{ID: id, Kernel: "k", Duration: 100, Deps: deps}
}

func in(addr uint64) task.Dep    { return task.Dep{Addr: addr, Size: 64, Dir: task.In} }
func out(addr uint64) task.Dep   { return task.Dep{Addr: addr, Size: 64, Dir: task.Out} }
func inout(addr uint64) task.Dep { return task.Dep{Addr: addr, Size: 64, Dir: task.InOut} }

func TestIndependentTaskImmediatelyReady(t *testing.T) {
	tr := NewTracker()
	res, err := tr.CreateTask(spec(0, out(0x100)))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ready || res.EdgesInserted != 0 || res.DepsMatched != 1 {
		t.Fatalf("res = %+v", res)
	}
}

func TestDuplicateCreateFails(t *testing.T) {
	tr := NewTracker()
	tr.CreateTask(spec(0))
	if _, err := tr.CreateTask(spec(0)); err == nil {
		t.Fatal("duplicate create accepted")
	}
}

func TestFinishUnknownOrTwiceFails(t *testing.T) {
	tr := NewTracker()
	if _, err := tr.FinishTask(7); err == nil {
		t.Fatal("finish of unknown task accepted")
	}
	tr.CreateTask(spec(0))
	if _, err := tr.FinishTask(0); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.FinishTask(0); err == nil {
		t.Fatal("double finish accepted")
	}
}

func TestRAWChain(t *testing.T) {
	tr := NewTracker()
	r0, _ := tr.CreateTask(spec(0, inout(0xA)))
	r1, _ := tr.CreateTask(spec(1, inout(0xA)))
	r2, _ := tr.CreateTask(spec(2, inout(0xA)))
	if !r0.Ready || r1.Ready || r2.Ready {
		t.Fatalf("readiness wrong: %v %v %v", r0.Ready, r1.Ready, r2.Ready)
	}
	f0, _ := tr.FinishTask(0)
	if len(f0.NewlyReady) != 1 || f0.NewlyReady[0] != 1 {
		t.Fatalf("finish(0) woke %v, want [1]", f0.NewlyReady)
	}
	f1, _ := tr.FinishTask(1)
	if len(f1.NewlyReady) != 1 || f1.NewlyReady[0] != 2 {
		t.Fatalf("finish(1) woke %v, want [2]", f1.NewlyReady)
	}
	tr.FinishTask(2)
	if !tr.Quiescent() {
		t.Fatal("tracker not quiescent after chain")
	}
}

func TestWARAndReaders(t *testing.T) {
	tr := NewTracker()
	tr.CreateTask(spec(0, out(0xB)))
	tr.CreateTask(spec(1, in(0xB)))
	tr.CreateTask(spec(2, in(0xB)))
	w, _ := tr.CreateTask(spec(3, out(0xB)))
	if w.Ready {
		t.Fatal("writer ready before readers finished")
	}
	if w.EdgesInserted != 3 {
		t.Fatalf("writer edges = %d, want 3 (WAW + 2x WAR)", w.EdgesInserted)
	}
	tr.FinishTask(0)
	f1, _ := tr.FinishTask(1)
	if len(f1.NewlyReady) != 0 {
		t.Fatal("writer woke too early")
	}
	f2, _ := tr.FinishTask(2)
	if len(f2.NewlyReady) != 1 || f2.NewlyReady[0] != 3 {
		t.Fatalf("writer not woken by last reader: %v", f2.NewlyReady)
	}
}

func TestNumSuccsVisibleAtWake(t *testing.T) {
	tr := NewTracker()
	tr.CreateTask(spec(0, out(0xC)))
	tr.CreateTask(spec(1, in(0xC), out(0xD)))
	tr.CreateTask(spec(2, in(0xD)))
	// Task 1 has one successor (task 2) known before task 0 finishes.
	f, _ := tr.FinishTask(0)
	if len(f.NewlyReady) != 1 || f.NewlyReady[0] != 1 {
		t.Fatalf("NewlyReady = %v", f.NewlyReady)
	}
	if len(f.NumSuccsOf) != 1 || f.NumSuccsOf[0] != 1 {
		t.Fatalf("NumSuccsOf = %v, want [1]", f.NumSuccsOf)
	}
	if tr.NumSuccs(1) != 1 {
		t.Fatalf("NumSuccs(1) = %d", tr.NumSuccs(1))
	}
	if tr.NumSuccs(99) != 0 {
		t.Fatal("NumSuccs of unknown task not zero")
	}
}

func TestRetiredProducerCreatesNoEdge(t *testing.T) {
	tr := NewTracker()
	tr.CreateTask(spec(0, out(0xE)))
	tr.FinishTask(0)
	res, _ := tr.CreateTask(spec(1, in(0xE)))
	if !res.Ready || res.EdgesInserted != 0 {
		t.Fatalf("consumer of retired producer should be ready with no edges: %+v", res)
	}
	if tr.TrackedDeps() == 0 {
		t.Fatal("dependence record should exist while the reader is in flight")
	}
	tr.FinishTask(1)
	if !tr.Quiescent() {
		t.Fatal("tracker leaked dependence records")
	}
}

func TestFinishResultCounts(t *testing.T) {
	tr := NewTracker()
	tr.CreateTask(spec(0, out(0x1), out(0x2)))
	tr.CreateTask(spec(1, in(0x1)))
	tr.CreateTask(spec(2, in(0x2)))
	f, _ := tr.FinishTask(0)
	if f.SuccessorsWoken != 2 || len(f.NewlyReady) != 2 || f.DepsReleased != 2 {
		t.Fatalf("finish result = %+v", f)
	}
}

// Property: driving any random creation-order program through the tracker and
// executing tasks as they become ready yields an order that respects the
// golden graph, retires every task, and leaves the tracker quiescent.
func TestPropertyTrackerMatchesGoldenGraph(t *testing.T) {
	f := func(ops []uint16) bool {
		if len(ops) > 200 {
			ops = ops[:200]
		}
		b := task.NewBuilder("rand")
		b.Region(0)
		for _, op := range ops {
			addr := uint64(op%9)*64 + 0x1000
			d := b.Task("t", 10)
			switch op % 3 {
			case 0:
				d.In(addr, 64)
			case 1:
				d.Out(addr, 64)
			default:
				d.InOut(addr, 64)
			}
			d.Add()
		}
		p := b.Build()
		g := task.BuildProgramGraph(p)
		v := task.NewOrderValidator(g)
		tr := NewTracker()
		var ready []task.ID
		for _, s := range p.Tasks() {
			res, err := tr.CreateTask(s)
			if err != nil {
				return false
			}
			if res.Ready {
				ready = append(ready, s.ID)
			}
			// Drain one ready task between creations to interleave
			// execution with creation, like real workers do.
			if len(ready) > 3 {
				id := ready[0]
				ready = ready[1:]
				v.Start(id)
				v.Finish(id)
				fr, err := tr.FinishTask(id)
				if err != nil {
					return false
				}
				ready = append(ready, fr.NewlyReady...)
			}
		}
		for len(ready) > 0 {
			id := ready[0]
			ready = ready[1:]
			v.Start(id)
			v.Finish(id)
			fr, err := tr.FinishTask(id)
			if err != nil {
				return false
			}
			ready = append(ready, fr.NewlyReady...)
		}
		return v.Err() == nil && tr.Quiescent()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: for programs executed strictly after full creation (no overlap),
// the number of edges the tracker discovers equals the golden graph's.
func TestPropertyEdgeCountMatchesGolden(t *testing.T) {
	f := func(ops []uint8) bool {
		if len(ops) > 120 {
			ops = ops[:120]
		}
		b := task.NewBuilder("rand")
		b.Region(0)
		for _, op := range ops {
			addr := uint64(op%6)*64 + 0x2000
			d := b.Task("t", 10)
			if op%2 == 0 {
				d.InOut(addr, 64)
			} else {
				d.In(addr, 64)
			}
			d.Add()
		}
		p := b.Build()
		g := task.BuildProgramGraph(p)
		tr := NewTracker()
		for _, s := range p.Tasks() {
			if _, err := tr.CreateTask(s); err != nil {
				return false
			}
		}
		return tr.EdgesCreated() == g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Command sweepd is the long-running sweep service: an HTTP daemon that
// accepts simulation-grid submissions, executes them on the shared parallel
// sweep engine, and streams per-point results as NDJSON while they complete.
//
//	sweepd -addr :8080 -store results/
//
// Submit a grid and stream its results on the same connection (aborting the
// request cancels the sweep's in-flight simulations):
//
//	curl -N -X POST 'localhost:8080/sweeps?stream=1' -d '{
//	  "benchmarks": ["cholesky", "synth:layered:seed=7"],
//	  "runtimes": ["software", "tdm"],
//	  "schedulers": ["fifo", "locality"],
//	  "cores": [16, 32]
//	}'
//
// Or submit asynchronously and follow by ID:
//
//	curl -X POST localhost:8080/sweeps -d '{"benchmarks":["histogram"]}'
//	curl localhost:8080/sweeps/s0001
//	curl -N localhost:8080/sweeps/s0001/stream
//	curl -X POST localhost:8080/sweeps/s0001/cancel
//
// With -store the service shares one content-addressed disk store across
// every sweep: identical points are simulated once, and because result files
// are written atomically (temp file + rename) the store survives crashes — a
// killed daemon restarts with every completed point warm.
//
// SIGTERM (or SIGINT) drains gracefully: new submissions get 503, running
// sweeps are cancelled — in-flight simulation points stop at task-boundary
// granularity — their final state is flushed to open streams, and the
// process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/runner"
	"repro/internal/service"
	"repro/internal/taskrt"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
		store    = flag.String("store", "", "directory persisting results as JSON for warm resume across restarts")
		workers  = flag.Int("workers", 0, "concurrent simulations across all sweeps (0 = GOMAXPROCS)")
		verbose  = flag.Bool("v", false, "log per-simulation progress")
		drainFor = flag.Duration("drain-timeout", 30*time.Second, "maximum time to wait for connections to close after drain")
	)
	flag.Parse()

	engine := &runner.Engine{
		Base:    core.DefaultConfig(taskrt.Software),
		Store:   runner.NewStore(),
		Workers: *workers,
	}
	if *verbose {
		engine.Log = os.Stderr
	}
	if *store != "" {
		st, err := runner.NewDiskStore(*store)
		if err != nil {
			log.Fatalf("sweepd: %v", err)
		}
		engine.Store = st
		log.Printf("sweepd: persisting results to %s", *store)
	}

	srv := service.New(engine, *workers)
	hs := &http.Server{Handler: srv.Handler()}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("sweepd: %v", err)
	}
	// The resolved address line doubles as the port-discovery protocol for
	// scripts that start sweepd with port 0.
	log.Printf("sweepd: listening on %s", ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case got := <-sig:
		log.Printf("sweepd: %s received, draining (in-flight points stop at the next task boundary)", got)
	case err := <-errc:
		log.Fatalf("sweepd: serve: %v", err)
	}

	// Drain: reject new submissions, cancel running sweeps, wait for their
	// final state to flush, then close the listener and open connections.
	srv.Drain(fmt.Errorf("sweepd: draining on signal"))
	ctx, cancel := context.WithTimeout(context.Background(), *drainFor)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		log.Printf("sweepd: shutdown: %v", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("sweepd: serve: %v", err)
	}
	log.Printf("sweepd: drained, exiting")
}

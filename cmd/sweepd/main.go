// Command sweepd is the long-running sweep service: an HTTP daemon that
// accepts simulation-grid submissions, executes them on the shared parallel
// sweep engine, and streams per-point results as NDJSON while they complete.
//
//	sweepd -addr :8080 -store results/
//
// Submit a grid and stream its results on the same connection (aborting the
// request cancels the sweep's in-flight simulations):
//
//	curl -N -X POST 'localhost:8080/sweeps?stream=1' -d '{
//	  "benchmarks": ["cholesky", "synth:layered:seed=7"],
//	  "runtimes": ["software", "tdm"],
//	  "schedulers": ["fifo", "locality"],
//	  "cores": [16, 32]
//	}'
//
// Or submit asynchronously and follow by ID:
//
//	curl -X POST localhost:8080/sweeps -d '{"benchmarks":["histogram"]}'
//	curl localhost:8080/sweeps/s0001
//	curl -N localhost:8080/sweeps/s0001/stream
//	curl -X POST localhost:8080/sweeps/s0001/cancel
//
// With -store the service shares one content-addressed disk store across
// every sweep: identical points are simulated once, and because result files
// are written atomically (temp file + rename) the store survives crashes — a
// killed daemon restarts with every completed point warm.
//
// SIGTERM (or SIGINT) drains gracefully: new submissions get 503, running
// sweeps are cancelled — in-flight simulation points stop at task-boundary
// granularity — their final state is flushed to open streams, and the
// process exits 0.
//
// # Fleet mode
//
// One sweepd can coordinate many others. Start workers with -worker (they
// serve only POST /execute and /healthz), then point a coordinator at them:
//
//	sweepd -worker -addr :8081
//	sweepd -worker -addr :8082
//	sweepd -addr :8080 -store results/ -peers http://host1:8081,http://host2:8082
//
// or register workers at runtime:
//
//	curl -X PUT localhost:8080/workers -d '{"url":"http://host3:8083","slots":4}'
//
// The coordinator shards every submitted grid across the fleet with a
// pull-based queue, requeues points whose worker dies mid-flight, and
// merges all results into its own content-addressed store — so the fleet
// is crash-tolerant and warm keys are never dispatched twice.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/remote"
	"repro/internal/runner"
	"repro/internal/service"
	"repro/internal/taskrt"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
		store     = flag.String("store", "", "directory persisting results as JSON for warm resume across restarts")
		workers   = flag.Int("workers", 0, "concurrent simulations across all sweeps (0 = GOMAXPROCS)")
		verbose   = flag.Bool("v", false, "log per-simulation progress")
		drainFor  = flag.Duration("drain-timeout", 30*time.Second, "maximum time to wait for connections to close after drain")
		workerOn  = flag.Bool("worker", false, "run as a fleet execution worker: serve only POST /execute and /healthz")
		peers     = flag.String("peers", "", "comma-separated worker base URLs to shard sweeps across (coordinator mode)")
		peerSlots = flag.Int("peer-slots", 0, "concurrent points dispatched to each -peers worker (0 = default)")
		maxPoints = flag.Int("max-points", service.DefaultMaxPoints, "largest grid expansion a submission may request")
	)
	flag.Parse()
	if *workerOn && *peers != "" {
		log.Fatalf("sweepd: -worker and -peers are mutually exclusive (a worker executes points, a coordinator dispatches them)")
	}

	engine := &runner.Engine{
		Base:    core.DefaultConfig(taskrt.Software),
		Store:   runner.NewStore(),
		Workers: *workers,
	}
	if *verbose {
		engine.Log = os.Stderr
	}
	if *store != "" {
		st, err := runner.NewDiskStore(*store)
		if err != nil {
			log.Fatalf("sweepd: %v", err)
		}
		engine.Store = st
		log.Printf("sweepd: persisting results to %s", *store)
	}

	// Structured logs (request, sweep and dispatch records) go to stderr
	// next to the protocol lines std log prints below.
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))

	var srv *service.Server
	mux := http.NewServeMux()
	if *workerOn {
		// Workers expose only the execution protocol — points arrive from a
		// coordinator, never as grid submissions — plus the same
		// observability surface a coordinator has: /metrics covering the
		// worker's engine, store and request handling, and /debug/pprof.
		reg := obs.NewRegistry()
		engine.Metrics = runner.NewEngineMetrics(reg)
		engine.Store.Metrics = runner.NewStoreMetrics(reg)
		wk := &remote.Worker{
			Engine:  engine,
			Log:     logger,
			Metrics: remote.NewWorkerMetrics(reg),
		}
		mux.Handle("POST /execute", wk.Handler())
		mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintln(w, `{"ok":true,"worker":true}`)
		})
		mux.Handle("GET /metrics", obs.Handler(reg))
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		log.Printf("sweepd: worker mode (serving /execute for a coordinator)")
	} else {
		srv = service.New(engine, *workers)
		srv.MaxPoints = *maxPoints
		srv.Log = logger
		// One dispatch-metric family shared by every fleet executor, so
		// /metrics breaks dispatches down per worker URL.
		dispatchMetrics := remote.NewMetrics(srv.Registry())
		newExecutor := func(url string) *remote.Executor {
			ex := remote.NewExecutor(url)
			ex.Metrics = dispatchMetrics
			return ex
		}
		srv.WorkerFactory = func(url string) runner.Executor { return newExecutor(url) }
		for _, peer := range strings.Split(*peers, ",") {
			if peer = strings.TrimSpace(peer); peer == "" {
				continue
			}
			peer = strings.TrimRight(peer, "/")
			srv.RegisterWorker(peer, newExecutor(peer), *peerSlots)
			log.Printf("sweepd: registered worker %s", peer)
		}
		// Coordinators deliberately do not serve /execute: the service's
		// own point semaphore already bounds local simulations, and a
		// second executor pool on the same engine would let chained
		// daemons oversubscribe -workers twofold.
		mux.Handle("/", srv.Handler())
	}
	hs := &http.Server{Handler: mux}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("sweepd: %v", err)
	}
	// The resolved address line doubles as the port-discovery protocol for
	// scripts that start sweepd with port 0.
	log.Printf("sweepd: listening on %s", ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case got := <-sig:
		log.Printf("sweepd: %s received, draining (in-flight points stop at the next task boundary)", got)
	case err := <-errc:
		log.Fatalf("sweepd: serve: %v", err)
	}

	// Drain: reject new submissions, cancel running sweeps, wait for their
	// final state to flush, then close the listener and open connections.
	// A worker has no sweeps of its own; Shutdown below waits out its
	// in-flight /execute requests.
	if srv != nil {
		srv.Drain(fmt.Errorf("sweepd: draining on signal"))
	}
	ctx, cancel := context.WithTimeout(context.Background(), *drainFor)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		log.Printf("sweepd: shutdown: %v", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("sweepd: serve: %v", err)
	}
	log.Printf("sweepd: drained, exiting")
}

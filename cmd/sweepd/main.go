// Command sweepd is the long-running sweep service: an HTTP daemon that
// accepts simulation-grid submissions, executes them on the shared parallel
// sweep engine, and streams per-point results as NDJSON while they complete.
//
//	sweepd -addr :8080 -store results/
//
// Submit a grid and stream its results on the same connection (aborting the
// request cancels the sweep's in-flight simulations):
//
//	curl -N -X POST 'localhost:8080/v1/sweeps?stream=1' -d '{
//	  "benchmarks": ["cholesky", "synth:layered:seed=7"],
//	  "runtimes": ["software", "tdm"],
//	  "schedulers": ["fifo", "locality"],
//	  "cores": [16, 32]
//	}'
//
// Or submit asynchronously and follow by ID:
//
//	curl -X POST localhost:8080/v1/sweeps -d '{"benchmarks":["histogram"]}'
//	curl localhost:8080/v1/sweeps/s0001
//	curl -N localhost:8080/v1/sweeps/s0001/stream
//	curl -X POST localhost:8080/v1/sweeps/s0001/cancel
//
// The API lives under /v1/; unprefixed paths 404 with the standard
// envelope, and every non-2xx response carries the {"error","code",...}
// envelope documented in the README. A submission with a "search" stanza
// runs a seeded successive-halving design-space search over the grid
// instead of exhausting it — see the README's design-space search section.
//
// With -store the service shares one content-addressed disk store across
// every sweep: identical points are simulated once, and because result files
// are written atomically (temp file + rename) the store survives crashes — a
// killed daemon restarts with every completed point warm.
//
// SIGTERM (or SIGINT) drains gracefully: new submissions get 503, running
// sweeps are cancelled — in-flight simulation points stop at task-boundary
// granularity — their final state is flushed to open streams, and the
// process exits 0.
//
// # Fleet mode
//
// One sweepd can coordinate many others. Start workers with -worker (they
// serve only POST /execute and /healthz), then point a coordinator at them:
//
//	sweepd -worker -addr :8081
//	sweepd -worker -addr :8082
//	sweepd -addr :8080 -store results/ -peers http://host1:8081,http://host2:8082
//
// or register workers at runtime:
//
//	curl -X PUT localhost:8080/v1/workers -d '{"url":"http://host3:8083","slots":4}'
//
// The coordinator shards every submitted grid across the fleet with a
// pull-based queue, requeues points whose worker dies mid-flight, and
// merges all results into its own content-addressed store — so the fleet
// is crash-tolerant and warm keys are never dispatched twice.
//
// # Tiered store
//
// The result store is a tiered cache: a bounded in-memory LRU
// (-store-mem-bytes) over the -store directory (bounded by -store-max-bytes;
// least-recently-accessed result files are GCed under a persistent,
// crash-rebuildable index), over the rest of the fleet (-store-peers): a key
// missing from both local tiers is fetched from peers' GET /v1/results/{key}
// before being simulated, so any result computed anywhere in the fleet is
// computed once. Every sweepd — coordinator or worker — serves
// GET /v1/results/{key} from its local tiers only.
//
// # Multi-tenancy
//
// Submissions may carry a tenant ({"tenant": "acme", ...}); tenants get
// weighted-fair shares of execution capacity under contention and optional
// admission quotas (429 when exceeded). Configure with:
//
//	curl -X PUT localhost:8080/v1/tenants/acme -d '{"weight":2,"max_active_points":500}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/remote"
	"repro/internal/runner"
	"repro/internal/service"
	"repro/internal/taskrt"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
		store     = flag.String("store", "", "directory persisting results as JSON for warm resume across restarts")
		memBytes  = flag.Int64("store-mem-bytes", 0, "bound the store's in-memory result tier (bytes, LRU-evicted; 0 = unbounded)")
		diskBytes = flag.Int64("store-max-bytes", 0, "bound the -store directory (bytes; least-recently-accessed result files are GCed; 0 = unbounded)")
		storePeer = flag.String("store-peers", "", "comma-separated sweepd base URLs to fetch cold results from before simulating (fleet-wide cache)")
		workers   = flag.Int("workers", 0, "concurrent simulations across all sweeps (0 = GOMAXPROCS)")
		verbose   = flag.Bool("v", false, "log per-simulation progress")
		drainFor  = flag.Duration("drain-timeout", 30*time.Second, "maximum time to wait for connections to close after drain")
		workerOn  = flag.Bool("worker", false, "run as a fleet execution worker: serve only POST /execute and /healthz")
		peers     = flag.String("peers", "", "comma-separated worker base URLs to shard sweeps across (coordinator mode)")
		peerSlots = flag.Int("peer-slots", 0, "concurrent points dispatched to each -peers worker (0 = default)")
		maxPoints = flag.Int("max-points", service.DefaultMaxPoints, "largest grid expansion a submission may request")
	)
	flag.Parse()
	if *workerOn && *peers != "" {
		log.Fatalf("sweepd: -worker and -peers are mutually exclusive (a worker executes points, a coordinator dispatches them)")
	}

	// The peer source is attached to the store before any simulation: a cold
	// key then resolves memory -> disk -> peers -> simulate.
	peerSource := remote.NewPeerSource(strings.Split(*storePeer, ","))
	st, err := runner.OpenStore(runner.StoreOptions{
		Dir:       *store,
		MemBytes:  *memBytes,
		DiskBytes: *diskBytes,
		Peers:     peerSource,
	})
	if err != nil {
		log.Fatalf("sweepd: %v", err)
	}
	engine := &runner.Engine{
		Base:    core.DefaultConfig(taskrt.Software),
		Store:   st,
		Workers: *workers,
	}
	if *verbose {
		engine.Log = os.Stderr
	}
	if *store != "" {
		log.Printf("sweepd: persisting results to %s", *store)
		if st.IndexRebuilt() {
			log.Printf("sweepd: store index rebuilt from result files")
		}
	}

	// Structured logs (request, sweep and dispatch records) go to stderr
	// next to the protocol lines std log prints below.
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))

	var srv *service.Server
	mux := http.NewServeMux()
	if *workerOn {
		// Workers expose only the execution protocol — points arrive from a
		// coordinator, never as grid submissions — plus the same
		// observability surface a coordinator has: /metrics covering the
		// worker's engine, store and request handling, and /debug/pprof.
		reg := obs.NewRegistry()
		engine.Metrics = runner.NewEngineMetrics(reg)
		engine.Store.Metrics = runner.NewStoreMetrics(reg)
		runner.RegisterStoreGauges(reg, engine.Store)
		if ps, ok := peerSource.(*remote.PeerSource); ok {
			ps.Metrics = remote.NewPeerMetrics(reg)
		}
		wk := &remote.Worker{
			Engine:  engine,
			Log:     logger,
			Metrics: remote.NewWorkerMetrics(reg),
		}
		mux.Handle("POST /execute", wk.Handler())
		// Every fleet node serves its store's local tiers to its peers,
		// under /v1 like the coordinator API surface.
		mux.Handle("GET /v1/results/{key}", remote.ResultsHandler(engine.Store))
		mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintln(w, `{"ok":true,"worker":true}`)
		})
		mux.Handle("GET /metrics", obs.Handler(reg))
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		log.Printf("sweepd: worker mode (serving /execute for a coordinator)")
	} else {
		srv = service.New(engine, *workers)
		srv.MaxPoints = *maxPoints
		srv.Log = logger
		if ps, ok := peerSource.(*remote.PeerSource); ok {
			ps.Metrics = remote.NewPeerMetrics(srv.Registry())
		}
		// One dispatch-metric family shared by every fleet executor, so
		// /metrics breaks dispatches down per worker URL.
		dispatchMetrics := remote.NewMetrics(srv.Registry())
		newExecutor := func(url string) *remote.Executor {
			ex := remote.NewExecutor(url)
			ex.Metrics = dispatchMetrics
			return ex
		}
		srv.WorkerFactory = func(url string) runner.Executor { return newExecutor(url) }
		for _, peer := range strings.Split(*peers, ",") {
			if peer = strings.TrimSpace(peer); peer == "" {
				continue
			}
			peer = strings.TrimRight(peer, "/")
			srv.RegisterWorker(peer, newExecutor(peer), *peerSlots)
			log.Printf("sweepd: registered worker %s", peer)
		}
		// Coordinators deliberately do not serve /execute: the service's
		// own point semaphore already bounds local simulations, and a
		// second executor pool on the same engine would let chained
		// daemons oversubscribe -workers twofold.
		mux.Handle("/", srv.Handler())
	}
	hs := &http.Server{Handler: mux}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("sweepd: %v", err)
	}
	// The resolved address line doubles as the port-discovery protocol for
	// scripts that start sweepd with port 0.
	log.Printf("sweepd: listening on %s", ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case got := <-sig:
		log.Printf("sweepd: %s received, draining (in-flight points stop at the next task boundary)", got)
	case err := <-errc:
		log.Fatalf("sweepd: serve: %v", err)
	}

	// Drain: reject new submissions, cancel running sweeps, wait for their
	// final state to flush, then close the listener and open connections.
	// A worker has no sweeps of its own; Shutdown below waits out its
	// in-flight /execute requests.
	if srv != nil {
		srv.Drain(fmt.Errorf("sweepd: draining on signal"))
	}
	ctx, cancel := context.WithTimeout(context.Background(), *drainFor)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		log.Printf("sweepd: shutdown: %v", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("sweepd: serve: %v", err)
	}
	log.Printf("sweepd: drained, exiting")
}

package main

import (
	"encoding/json"
	"os/exec"
	"strings"
	"testing"
)

// TestList: -list names all eight analyzers and exits 0.
func TestList(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("-list exited %d, stderr: %s", code, errOut.String())
	}
	for _, name := range []string{
		"determinism", "obsnames", "apienvelope", "ctxflow",
		"locksafe", "goleak", "hotalloc", "errclass",
	} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %q:\n%s", name, out.String())
		}
	}
}

// TestOnlyUnknown: a bogus -only selection is a usage error (exit 2), not a
// silent no-op run.
func TestOnlyUnknown(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-only", "notananalyzer"}, &out, &errOut); code != 2 {
		t.Fatalf("unknown -only exited %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown analyzer") {
		t.Errorf("stderr %q does not name the unknown analyzer", errOut.String())
	}
}

// TestDryRunRequiresFix: -dry-run without -fix is a usage error.
func TestDryRunRequiresFix(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-dry-run"}, &out, &errOut); code != 2 {
		t.Fatalf("-dry-run without -fix exited %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "-fix") {
		t.Errorf("stderr %q does not point at -fix", errOut.String())
	}
}

// TestCleanPackage: a package with no findings exits 0 and prints nothing.
func TestCleanPackage(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-only", "obsnames", "repro/internal/obs"}, &out, &errOut); code != 0 {
		t.Fatalf("clean run exited %d, stderr: %s", code, errOut.String())
	}
	if out.String() != "" {
		t.Errorf("clean run printed findings:\n%s", out.String())
	}
}

// TestJSONCleanPackage: -json always emits a well-formed array, empty on a
// clean run, so tooling can consume the output unconditionally.
func TestJSONCleanPackage(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-json", "-only", "obsnames", "repro/internal/obs"}, &out, &errOut); code != 0 {
		t.Fatalf("clean -json run exited %d, stderr: %s", code, errOut.String())
	}
	var findings []jsonFinding
	if err := json.Unmarshal([]byte(out.String()), &findings); err != nil {
		t.Fatalf("-json output is not a JSON array: %v\n%s", err, out.String())
	}
	if len(findings) != 0 {
		t.Errorf("clean run emitted %d findings", len(findings))
	}
}

// TestFixDryRunClean: the nightly drift gate invocation — the suite over the
// whole module proposes no fixes and exits 0.
func TestFixDryRunClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	root, err := exec.Command("go", "list", "-m", "-f", "{{.Dir}}").Output()
	if err != nil {
		t.Fatalf("locate module root: %v", err)
	}
	t.Chdir(strings.TrimSpace(string(root)))
	var out, errOut strings.Builder
	if code := run([]string{"-fix", "-dry-run", "./..."}, &out, &errOut); code != 0 {
		t.Fatalf("-fix -dry-run over ./... exited %d — a fix would apply:\n%s%s", code, out.String(), errOut.String())
	}
	if out.String() != "" {
		t.Errorf("dry run printed a diff on a clean tree:\n%s", out.String())
	}
}

// TestVerboseReportsTiming: -v writes load/analyze wall time and loader
// statistics to stderr without disturbing stdout.
func TestVerboseReportsTiming(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-v", "-only", "obsnames", "repro/internal/obs"}, &out, &errOut); code != 0 {
		t.Fatalf("-v run exited %d, stderr: %s", code, errOut.String())
	}
	for _, want := range []string{"loaded 1 package(s)", "type-checks", "analyzed in"} {
		if !strings.Contains(errOut.String(), want) {
			t.Errorf("-v stderr missing %q:\n%s", want, errOut.String())
		}
	}
	if out.String() != "" {
		t.Errorf("-v leaked diagnostics onto stdout:\n%s", out.String())
	}
}

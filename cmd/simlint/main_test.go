package main

import (
	"strings"
	"testing"
)

// TestList: -list names every analyzer and exits 0.
func TestList(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("-list exited %d, stderr: %s", code, errOut.String())
	}
	for _, name := range []string{"determinism", "obsnames", "apienvelope", "ctxflow"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %q:\n%s", name, out.String())
		}
	}
}

// TestOnlyUnknown: a bogus -only selection is a usage error (exit 2), not a
// silent no-op run.
func TestOnlyUnknown(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-only", "notananalyzer"}, &out, &errOut); code != 2 {
		t.Fatalf("unknown -only exited %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown analyzer") {
		t.Errorf("stderr %q does not name the unknown analyzer", errOut.String())
	}
}

// TestCleanPackage: a package with no findings exits 0 and prints nothing.
func TestCleanPackage(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-only", "obsnames", "repro/internal/obs"}, &out, &errOut); code != 0 {
		t.Fatalf("clean run exited %d, stderr: %s", code, errOut.String())
	}
	if out.String() != "" {
		t.Errorf("clean run printed findings:\n%s", out.String())
	}
}

// Command simlint runs the repository's static-analysis suite
// (internal/analysis) over the given packages:
//
//	go run ./cmd/simlint ./...
//
// It prints one line per finding and exits non-zero when any survive their
// //simlint:allow suppressions. The four analyzers and the invariants they
// guard are documented in the README's "Static analysis" section; -list
// prints them. -only restricts the run to a comma-separated subset.
//
// simlint is a standalone multichecker rather than a `go vet -vettool`
// because the vettool protocol needs golang.org/x/tools/go/analysis, and
// this repository builds with the standard library alone.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("simlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers := analysis.All()
	if *only != "" {
		var picked []*analysis.Analyzer
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			found := false
			for _, a := range analyzers {
				if a.Name == name {
					picked = append(picked, a)
					found = true
				}
			}
			if !found {
				fmt.Fprintf(stderr, "simlint: unknown analyzer %q (try -list)\n", name)
				return 2
			}
		}
		analyzers = picked
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "simlint: %v\n", err)
		return 2
	}
	loader := analysis.NewLoader(wd)
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "simlint: %v\n", err)
		return 2
	}
	diags, err := analysis.RunPackages(analyzers, pkgs)
	if err != nil {
		fmt.Fprintf(stderr, "simlint: %v\n", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "simlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

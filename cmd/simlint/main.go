// Command simlint runs the repository's static-analysis suite
// (internal/analysis) over the given packages:
//
//	go run ./cmd/simlint ./...
//
// It prints one line per finding and exits non-zero when any survive their
// //simlint:allow suppressions. The eight analyzers and the invariants they
// guard are documented in the README's "Static analysis" section; -list
// prints them. -only restricts the run to a comma-separated subset.
//
// Findings that carry a suggested fix can be repaired in place: -fix applies
// the edits atomically (temp file + rename per source file), and
// -fix -dry-run prints the unified diff that WOULD be applied and exits 1 if
// there is one — the mode CI's drift check runs nightly. -json emits the
// findings as a machine-readable array for tooling, and -v reports load and
// analysis wall time plus loader statistics.
//
// simlint is a standalone multichecker rather than a `go vet -vettool`
// because the vettool protocol needs golang.org/x/tools/go/analysis, and
// this repository builds with the standard library alone.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("simlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	fix := fs.Bool("fix", false, "apply suggested fixes to the source files")
	dryRun := fs.Bool("dry-run", false, "with -fix: print the diff instead of writing, exit 1 if any fix would apply")
	asJSON := fs.Bool("json", false, "emit findings as a JSON array")
	verbose := fs.Bool("v", false, "report wall time and loader statistics on stderr")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *dryRun && !*fix {
		fmt.Fprintln(stderr, "simlint: -dry-run only makes sense with -fix")
		return 2
	}
	analyzers := analysis.All()
	if *only != "" {
		var picked []*analysis.Analyzer
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			found := false
			for _, a := range analyzers {
				if a.Name == name {
					picked = append(picked, a)
					found = true
				}
			}
			if !found {
				fmt.Fprintf(stderr, "simlint: unknown analyzer %q (try -list)\n", name)
				return 2
			}
		}
		analyzers = picked
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "simlint: %v\n", err)
		return 2
	}
	loader := analysis.NewLoader(wd)
	loadStart := time.Now()
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "simlint: %v\n", err)
		return 2
	}
	loadTime := time.Since(loadStart)
	analyzeStart := time.Now()
	diags, err := analysis.RunPackages(analyzers, pkgs)
	if err != nil {
		fmt.Fprintf(stderr, "simlint: %v\n", err)
		return 2
	}
	if *verbose {
		st := loader.Stats()
		fmt.Fprintf(stderr, "simlint: loaded %d package(s) in %s (%d type-checks, %d files parsed; dependencies shared across all %d analyzers)\n",
			len(pkgs), loadTime.Round(time.Millisecond), st.TypeChecks, st.ParsedFiles, len(analyzers))
		fmt.Fprintf(stderr, "simlint: analyzed in %s\n", time.Since(analyzeStart).Round(time.Millisecond))
	}
	if *fix {
		return applyFixes(loader.Fset, diags, *dryRun, stdout, stderr)
	}
	if *asJSON {
		if err := writeJSON(stdout, diags); err != nil {
			fmt.Fprintf(stderr, "simlint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "simlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// applyFixes resolves the findings' suggested edits. In dry-run mode it
// prints the unified diff and exits 1 if anything would change (the nightly
// drift gate); otherwise it rewrites the files atomically and exits by the
// count of findings that remain unfixable.
func applyFixes(fset *token.FileSet, diags []analysis.Diagnostic, dryRun bool, stdout, stderr io.Writer) int {
	fixed, err := analysis.ApplyFixes(fset, diags, os.ReadFile)
	if err != nil {
		fmt.Fprintf(stderr, "simlint: %v\n", err)
		return 2
	}
	unfixable := 0
	for _, d := range diags {
		if d.Fix == nil {
			unfixable++
			fmt.Fprintln(stdout, d)
		}
	}
	if dryRun {
		changed := 0
		for _, name := range sortedKeys(fixed) {
			before, err := os.ReadFile(name)
			if err != nil {
				fmt.Fprintf(stderr, "simlint: %v\n", err)
				return 2
			}
			display := name
			if wd, err := os.Getwd(); err == nil {
				if rel, err := filepath.Rel(wd, name); err == nil && !strings.HasPrefix(rel, "..") {
					display = rel
				}
			}
			if diff := analysis.UnifiedDiff(display, before, fixed[name]); diff != "" {
				fmt.Fprint(stdout, diff)
				changed++
			}
		}
		if changed > 0 {
			fmt.Fprintf(stderr, "simlint: %d file(s) would be fixed (run -fix without -dry-run)\n", changed)
			return 1
		}
		if unfixable > 0 {
			fmt.Fprintf(stderr, "simlint: %d finding(s) with no suggested fix\n", unfixable)
			return 1
		}
		return 0
	}
	if err := analysis.WriteFixes(fixed); err != nil {
		fmt.Fprintf(stderr, "simlint: %v\n", err)
		return 2
	}
	if len(fixed) > 0 {
		fmt.Fprintf(stderr, "simlint: applied fixes to %d file(s)\n", len(fixed))
	}
	if unfixable > 0 {
		fmt.Fprintf(stderr, "simlint: %d finding(s) remain with no suggested fix\n", unfixable)
		return 1
	}
	return 0
}

func sortedKeys(m map[string][]byte) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// jsonFinding is the machine-readable finding shape -json emits; the GitHub
// Actions problem matcher consumes the plain-text format, tooling consumes
// this one.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	Fixable  bool   `json:"fixable"`
}

func writeJSON(w io.Writer, diags []analysis.Diagnostic) error {
	out := make([]jsonFinding, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonFinding{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
			Fixable:  d.Fix != nil,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

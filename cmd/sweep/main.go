// Command sweep runs arbitrary simulation grids through the parallel sweep
// engine (internal/runner): the cartesian product of the requested
// benchmarks, runtime systems, schedulers, core counts and granularities is
// expanded into content-addressed jobs, executed concurrently over a worker
// pool, and reported as a table, CSV or JSON.
//
// With -store DIR every result is persisted as a JSON file keyed by its
// content address, so an interrupted sweep resumes warm:
//
//	sweep -store results/ -benchmarks cholesky,qr -runtimes software,tdm \
//	      -schedulers fifo,locality -cores 16,32
//
// Examples:
//
//	sweep -list
//	sweep -benchmarks histogram -runtimes tdm -format json
//	sweep -runtimes software,tdm,carbon,tasksuperscalar -o results.csv -format csv
//	sweep -benchmarks cholesky -granularities 16,32,64,128 -dry-run
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/runner"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/taskrt"
	"repro/internal/workloads"
)

// point is the flattened per-job record emitted by the CLI.
type point struct {
	Key         string  `json:"key"`
	Benchmark   string  `json:"benchmark"`
	Runtime     string  `json:"runtime"`
	Scheduler   string  `json:"scheduler"`
	Cores       int     `json:"cores"`
	Granularity int64   `json:"granularity"`
	Tasks       int     `json:"tasks"`
	Cycles      int64   `json:"cycles"`
	Seconds     float64 `json:"seconds"`
	EnergyJ     float64 `json:"energy_joules"`
	AvgPowerW   float64 `json:"avg_power_watts"`
	EDP         float64 `json:"edp"`
}

func main() {
	var (
		list          = flag.Bool("list", false, "list benchmarks, runtimes and schedulers, then exit")
		benchmarks    = flag.String("benchmarks", "", "comma-separated benchmarks (default: all)")
		runtimes      = flag.String("runtimes", "", "comma-separated runtimes (default: all)")
		schedulers    = flag.String("schedulers", "", "comma-separated schedulers (default: fifo)")
		cores         = flag.String("cores", "", "comma-separated core counts (default: 32)")
		granularities = flag.String("granularities", "", "comma-separated granularities, 0 = Table II optimal (default: 0)")
		workers       = flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
		store         = flag.String("store", "", "directory persisting results as JSON for warm resume")
		format        = flag.String("format", "table", "output format: table, csv or json")
		out           = flag.String("o", "", "write results to a file instead of stdout")
		dryRun        = flag.Bool("dry-run", false, "print the expanded job list without simulating")
		verbose       = flag.Bool("v", false, "log per-simulation progress to stderr")
	)
	flag.Parse()

	if *list {
		fmt.Printf("benchmarks: %s\n", strings.Join(workloads.Names(), ", "))
		var kinds []string
		for _, k := range taskrt.Kinds() {
			kinds = append(kinds, string(k))
		}
		fmt.Printf("runtimes:   %s\n", strings.Join(kinds, ", "))
		fmt.Printf("schedulers: %s\n", strings.Join(sched.Names(), ", "))
		return
	}

	switch *format {
	case "table", "csv", "json":
	default:
		fatal(fmt.Errorf("unknown format %q (table, csv, json)", *format))
	}
	grid, err := buildGrid(*benchmarks, *runtimes, *schedulers, *cores, *granularities)
	if err != nil {
		fatal(err)
	}
	jobs := grid.Jobs()
	if len(jobs) == 0 {
		fatal(fmt.Errorf("empty grid"))
	}

	engine := &runner.Engine{
		Base:    core.DefaultConfig(taskrt.Software),
		Store:   runner.NewStore(),
		Workers: *workers,
	}
	if *verbose {
		engine.Log = os.Stderr
	}
	if *store != "" {
		st, err := runner.NewDiskStore(*store)
		if err != nil {
			fatal(err)
		}
		engine.Store = st
	}

	if *dryRun {
		for _, j := range jobs {
			fmt.Printf("%s  %s\n", engine.Key(j)[:12], j.Desc())
		}
		fmt.Printf("%d jobs\n", len(jobs))
		return
	}

	results, err := engine.RunAll(jobs)
	if err != nil {
		fatal(err)
	}
	points := make([]point, len(jobs))
	for i, j := range jobs {
		res := results[i]
		cfg := j.Config(engine.Base)
		scheduler := cfg.Scheduler
		if !j.Runtime.UsesSoftwareScheduler() {
			// Carbon and Task Superscalar schedule in hardware; reporting
			// a software policy here would be misleading.
			scheduler = "-"
		}
		points[i] = point{
			Key:         engine.Key(j),
			Benchmark:   j.Benchmark,
			Runtime:     string(j.Runtime),
			Scheduler:   scheduler,
			Cores:       cfg.Machine.Cores,
			Granularity: j.Granularity,
			Tasks:       res.Program.NumTasks(),
			Cycles:      res.Cycles,
			Seconds:     res.Seconds,
			EnergyJ:     res.Energy.EnergyJoules,
			AvgPowerW:   res.Energy.AveragePowerW,
			EDP:         res.Energy.EDP,
		}
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := emit(w, *format, points); err != nil {
		fatal(err)
	}
}

// buildGrid parses the comma-separated dimension flags.
func buildGrid(benchmarks, runtimes, schedulers, cores, granularities string) (runner.Grid, error) {
	g := runner.Grid{
		Benchmarks: splitList(benchmarks),
		Schedulers: splitList(schedulers),
	}
	for _, r := range splitList(runtimes) {
		g.Runtimes = append(g.Runtimes, taskrt.Kind(r))
	}
	for _, c := range splitList(cores) {
		n, err := strconv.Atoi(c)
		if err != nil || n <= 0 {
			return g, fmt.Errorf("invalid core count %q", c)
		}
		g.Cores = append(g.Cores, n)
	}
	for _, s := range splitList(granularities) {
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil || n < 0 {
			return g, fmt.Errorf("invalid granularity %q", s)
		}
		g.Granularities = append(g.Granularities, n)
	}
	return g, g.Validate()
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// emit writes the sweep results in the requested format.
func emit(w io.Writer, format string, points []point) error {
	switch format {
	case "json":
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(points)
	case "table", "csv":
		t := stats.NewTable("Sweep results",
			"benchmark", "runtime", "scheduler", "cores", "granularity",
			"tasks", "cycles", "seconds", "energy (J)", "EDP")
		for _, p := range points {
			t.AddRowValues(p.Benchmark, p.Runtime, p.Scheduler, p.Cores, p.Granularity,
				p.Tasks, p.Cycles, fmt.Sprintf("%.6f", p.Seconds),
				fmt.Sprintf("%.6f", p.EnergyJ), fmt.Sprintf("%.6g", p.EDP))
		}
		var err error
		if format == "csv" {
			_, err = fmt.Fprintln(w, t.CSV())
		} else {
			_, err = fmt.Fprintln(w, t.String())
		}
		return err
	default:
		return fmt.Errorf("sweep: unknown format %q (table, csv, json)", format)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}

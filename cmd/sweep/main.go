// Command sweep runs arbitrary simulation grids through the parallel sweep
// engine (internal/runner): the cartesian product of the requested
// benchmarks, runtime systems, schedulers, core counts and granularities is
// expanded into content-addressed jobs, executed concurrently over a worker
// pool, and reported as a table, CSV or JSON.
//
// With -store DIR every result is persisted as a JSON file keyed by its
// content address, so an interrupted sweep resumes warm:
//
//	sweep -store results/ -benchmarks cholesky,qr -runtimes software,tdm \
//	      -schedulers fifo,locality -cores 16,32
//
// Workloads are either the paper's nine benchmarks or synthetic DAG-family
// specs (-workload synth:<family>:<params>, see internal/workloads/synth);
// "synth:all" expands to every family at default parameters. Any workload of
// a sweep can be recorded to a versioned JSON program file (-dump-program)
// and replayed byte-identically in a later sweep (-replay-program).
//
// Examples:
//
//	sweep -list
//	sweep -benchmarks histogram -runtimes tdm -format json
//	sweep -runtimes software,tdm,carbon,tasksuperscalar -o results.csv -format csv
//	sweep -benchmarks cholesky -granularities 16,32,64,128 -dry-run
//	sweep -workload synth:layered:seed=7,width=12,depth=20,density=0.4 -runtimes tdm
//	sweep -workload synth:all -dump-program programs/
//	sweep -replay-program programs/synth_layered.json -runtimes software,tdm
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/runner"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/task"
	"repro/internal/taskrt"
	"repro/internal/workloads"
)

// point is the flattened per-job record emitted by the CLI.
type point struct {
	Key         string  `json:"key"`
	Benchmark   string  `json:"benchmark"`
	Runtime     string  `json:"runtime"`
	Scheduler   string  `json:"scheduler"`
	Cores       int     `json:"cores"`
	Granularity int64   `json:"granularity"`
	Tasks       int     `json:"tasks"`
	Cycles      int64   `json:"cycles"`
	Seconds     float64 `json:"seconds"`
	EnergyJ     float64 `json:"energy_joules"`
	AvgPowerW   float64 `json:"avg_power_watts"`
	EDP         float64 `json:"edp"`
}

func main() {
	var (
		list          = flag.Bool("list", false, "list workloads, runtimes and schedulers, then exit")
		benchmarks    = flag.String("benchmarks", "", "comma-separated benchmarks (default: all)")
		workload      = flag.String("workload", "", "comma-separated extra workload specs, e.g. synth:layered:seed=7 or synth:all")
		dumpProgram   = flag.String("dump-program", "", "record every workload of the grid as a JSON program file into this directory, then exit")
		replayProgram = flag.String("replay-program", "", "comma-separated program JSON files to replay across the grid instead of generating workloads")
		runtimes      = flag.String("runtimes", "", "comma-separated runtimes (default: all)")
		schedulers    = flag.String("schedulers", "", "comma-separated schedulers (default: fifo)")
		cores         = flag.String("cores", "", "comma-separated core counts (default: 32)")
		granularities = flag.String("granularities", "", "comma-separated granularities, 0 = Table II optimal (default: 0)")
		workers       = flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
		store         = flag.String("store", "", "directory persisting results as JSON for warm resume")
		format        = flag.String("format", "table", "output format: table, csv or json")
		out           = flag.String("o", "", "write results to a file instead of stdout")
		dryRun        = flag.Bool("dry-run", false, "print the expanded job list without simulating")
		verbose       = flag.Bool("v", false, "log per-simulation progress to stderr")
	)
	flag.Parse()

	if *list {
		fmt.Printf("benchmarks: %s\n", strings.Join(workloads.Names(), ", "))
		var kinds []string
		for _, k := range taskrt.Kinds() {
			kinds = append(kinds, string(k))
		}
		fmt.Printf("runtimes:   %s\n", strings.Join(kinds, ", "))
		fmt.Printf("schedulers: %s\n", strings.Join(sched.Names(), ", "))
		fmt.Println("synthetic families (-workload synth:<family>:key=value,..., or synth:all):")
		for _, line := range workloads.SyntheticFamilies() {
			fmt.Printf("  %s\n", line)
		}
		return
	}

	switch *format {
	case "table", "csv", "json":
	default:
		fatal(fmt.Errorf("unknown format %q (table, csv, json)", *format))
	}
	benchList := *benchmarks
	if *workload != "" {
		if benchList != "" {
			benchList += ","
		}
		benchList += *workload
	}
	replayFiles := splitList(*replayProgram)
	if len(replayFiles) > 0 {
		if benchList != "" || *granularities != "" {
			fatal(fmt.Errorf("-replay-program replaces the workload dimension; drop -benchmarks/-workload/-granularities"))
		}
		if *dumpProgram != "" {
			fatal(fmt.Errorf("-dump-program and -replay-program are mutually exclusive"))
		}
		// Validate only the non-workload dimensions.
		benchList = ""
	}
	grid, err := buildGrid(benchList, *runtimes, *schedulers, *cores, *granularities)
	if err != nil {
		fatal(err)
	}
	var jobs []runner.Job
	if len(replayFiles) > 0 {
		if jobs, err = replayJobs(grid, replayFiles); err != nil {
			fatal(err)
		}
	} else {
		jobs = grid.Jobs()
	}
	if len(jobs) == 0 {
		fatal(fmt.Errorf("empty grid"))
	}

	engine := &runner.Engine{
		Base:    core.DefaultConfig(taskrt.Software),
		Store:   runner.NewStore(),
		Workers: *workers,
	}
	if *verbose {
		engine.Log = os.Stderr
	}
	if *store != "" {
		st, err := runner.NewDiskStore(*store)
		if err != nil {
			fatal(err)
		}
		engine.Store = st
	}

	if *dumpProgram != "" {
		if err := dumpPrograms(*dumpProgram, jobs, engine.Base); err != nil {
			fatal(err)
		}
		return
	}

	if *dryRun {
		for _, j := range jobs {
			fmt.Printf("%s  %s\n", engine.Key(j)[:12], j.Desc())
		}
		fmt.Printf("%d jobs\n", len(jobs))
		return
	}

	results, err := engine.RunAll(jobs)
	if err != nil {
		fatal(err)
	}
	points := make([]point, len(jobs))
	for i, j := range jobs {
		res := results[i]
		cfg := j.Config(engine.Base)
		scheduler := cfg.Scheduler
		if !j.Runtime.UsesSoftwareScheduler() {
			// Carbon and Task Superscalar schedule in hardware; reporting
			// a software policy here would be misleading.
			scheduler = "-"
		}
		points[i] = point{
			Key:         engine.Key(j),
			Benchmark:   j.Benchmark,
			Runtime:     string(j.Runtime),
			Scheduler:   scheduler,
			Cores:       cfg.Machine.Cores,
			Granularity: j.Granularity,
			Tasks:       res.Program.NumTasks(),
			Cycles:      res.Cycles,
			Seconds:     res.Seconds,
			EnergyJ:     res.Energy.EnergyJoules,
			AvgPowerW:   res.Energy.AveragePowerW,
			EDP:         res.Energy.EDP,
		}
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := emit(w, *format, points); err != nil {
		fatal(err)
	}
}

// replayJobs expands the grid's runtime/scheduler/core dimensions over
// recorded programs instead of generated workloads. Each program file is
// decoded once and shared by every point that replays it.
func replayJobs(grid runner.Grid, files []string) ([]runner.Job, error) {
	// Reuse Grid.Jobs for the hardware-scheduler normalization; the
	// placeholder benchmark never reaches a generator because every job
	// carries an explicit Program.
	grid.Benchmarks = []string{"replay"}
	grid.Granularities = []int64{0}
	templates := grid.Jobs()
	var jobs []runner.Job
	for _, file := range files {
		prog, err := task.ReadProgramFile(file)
		if err != nil {
			return nil, err
		}
		for _, j := range templates {
			j.Benchmark = prog.Name
			j.Program = prog
			j.Label = "replay"
			jobs = append(jobs, j)
		}
	}
	return jobs, nil
}

// dumpPrograms records every distinct workload of the job list as a JSON
// program file under dir (the record half of record/replay).
func dumpPrograms(dir string, jobs []runner.Job, base core.Config) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("create dump directory: %w", err)
	}
	type point struct {
		bench string
		gran  int64
	}
	seen := make(map[point]bool)
	count := 0
	for _, j := range jobs {
		bench, err := workloads.ByName(j.Benchmark)
		if err != nil {
			return err
		}
		// Granularity 0 means "optimal", which depends on the runtime
		// class (Table II): benchmarks whose software and TDM optima
		// differ record one program per class so each replay reproduces
		// its direct run exactly.
		gran := j.Granularity
		if gran == 0 {
			gran = bench.OptimalFor(j.Runtime.UsesDMU())
		}
		pt := point{j.Benchmark, gran}
		if seen[pt] {
			continue
		}
		seen[pt] = true
		suffix := j.Granularity
		if suffix == 0 && bench.SWOptimal != bench.TDMOptimal {
			suffix = gran
		}
		prog := bench.Generate(gran, base.Machine)
		path := filepath.Join(dir, programFileName(prog.Name, suffix))
		if err := task.WriteProgramFile(path, prog); err != nil {
			return err
		}
		fmt.Printf("recorded %-60s %6d tasks -> %s\n", prog.Name, prog.NumTasks(), path)
		count++
	}
	fmt.Printf("%d programs recorded\n", count)
	return nil
}

// programFileName sanitizes a program name into a file name, suffixed with
// the explicit granularity when one was requested.
func programFileName(name string, gran int64) string {
	s := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
			return r
		default:
			return '_'
		}
	}, name)
	if gran != 0 {
		s += fmt.Sprintf("-g%d", gran)
	}
	return s + ".json"
}

// buildGrid parses the comma-separated dimension flags.
func buildGrid(benchmarks, runtimes, schedulers, cores, granularities string) (runner.Grid, error) {
	g := runner.Grid{
		Benchmarks: splitWorkloads(benchmarks),
		Schedulers: splitList(schedulers),
	}
	for _, r := range splitList(runtimes) {
		g.Runtimes = append(g.Runtimes, taskrt.Kind(r))
	}
	for _, c := range splitList(cores) {
		n, err := strconv.Atoi(c)
		if err != nil || n <= 0 {
			return g, fmt.Errorf("invalid core count %q", c)
		}
		g.Cores = append(g.Cores, n)
	}
	for _, s := range splitList(granularities) {
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil || n < 0 {
			return g, fmt.Errorf("invalid granularity %q", s)
		}
		g.Granularities = append(g.Granularities, n)
	}
	return g, g.Validate()
}

// splitWorkloads splits a comma-separated workload list while keeping the
// key=value parameter block of a synth spec attached to its spec: a fragment
// containing "=" continues the previous synthetic spec unless it starts a
// new one.
func splitWorkloads(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part == "" {
			continue
		}
		if len(out) > 0 && strings.Contains(part, "=") && !strings.HasPrefix(part, "synth:") {
			out[len(out)-1] += "," + part
			continue
		}
		out = append(out, part)
	}
	return out
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// emit writes the sweep results in the requested format.
func emit(w io.Writer, format string, points []point) error {
	switch format {
	case "json":
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(points)
	case "table", "csv":
		t := stats.NewTable("Sweep results",
			"benchmark", "runtime", "scheduler", "cores", "granularity",
			"tasks", "cycles", "seconds", "energy (J)", "EDP")
		for _, p := range points {
			t.AddRowValues(p.Benchmark, p.Runtime, p.Scheduler, p.Cores, p.Granularity,
				p.Tasks, p.Cycles, fmt.Sprintf("%.6f", p.Seconds),
				fmt.Sprintf("%.6f", p.EnergyJ), fmt.Sprintf("%.6g", p.EDP))
		}
		var err error
		if format == "csv" {
			_, err = fmt.Fprintln(w, t.CSV())
		} else {
			_, err = fmt.Fprintln(w, t.String())
		}
		return err
	default:
		return fmt.Errorf("sweep: unknown format %q (table, csv, json)", format)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}

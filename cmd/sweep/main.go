// Command sweep runs arbitrary simulation grids through the parallel sweep
// engine (internal/runner): the cartesian product of the requested
// benchmarks, runtime systems, schedulers, core counts and granularities is
// expanded into content-addressed jobs, executed concurrently over a worker
// pool, and reported as a table, CSV or JSON.
//
// With -store DIR every result is persisted as a JSON file keyed by its
// content address, so an interrupted sweep resumes warm:
//
//	sweep -store results/ -benchmarks cholesky,qr -runtimes software,tdm \
//	      -schedulers fifo,locality -cores 16,32
//
// Workloads are either the paper's nine benchmarks or synthetic DAG-family
// specs (-workload synth:<family>:<params>, see internal/workloads/synth);
// "synth:all" expands to every family at default parameters. Any workload of
// a sweep can be recorded to a versioned JSON program file (-dump-program)
// and replayed byte-identically in a later sweep (-replay-program).
//
// Examples:
//
//	sweep -list
//	sweep -benchmarks histogram -runtimes tdm -format json
//	sweep -runtimes software,tdm,carbon,tasksuperscalar -o results.csv -format csv
//	sweep -benchmarks cholesky -granularities 16,32,64,128 -dry-run
//	sweep -workload synth:layered:seed=7,width=12,depth=20,density=0.4 -runtimes tdm
//	sweep -workload synth:all -dump-program programs/
//	sweep -replay-program programs/synth_layered.json -runtimes software,tdm
//
// With -remote the grid is submitted to a sweepd daemon (optionally a
// coordinator sharding it across a worker fleet) instead of simulating
// in-process; the streamed results render byte-identically to a local run:
//
//	sweep -remote http://sweepd-host:8080 -benchmarks cholesky -runtimes software,tdm
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"syscall"

	"repro/internal/core"
	"repro/internal/remote"
	"repro/internal/runner"
	"repro/internal/sched"
	"repro/internal/search"
	"repro/internal/service"
	"repro/internal/stats"
	"repro/internal/task"
	"repro/internal/taskrt"
	"repro/internal/workloads"
)

// point is the flattened per-job record emitted by the CLI.
type point struct {
	Key         string  `json:"key"`
	Benchmark   string  `json:"benchmark"`
	Runtime     string  `json:"runtime"`
	Scheduler   string  `json:"scheduler"`
	Cores       int     `json:"cores"`
	Granularity int64   `json:"granularity"`
	Tasks       int     `json:"tasks"`
	Cycles      int64   `json:"cycles"`
	Seconds     float64 `json:"seconds"`
	EnergyJ     float64 `json:"energy_joules"`
	AvgPowerW   float64 `json:"avg_power_watts"`
	EDP         float64 `json:"edp"`
}

func main() {
	// Ctrl-C or SIGTERM cancels the sweep: in-flight simulations stop at
	// their next task boundary, and points already persisted to -store stay
	// warm for the next invocation.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// Deregister the handler once the first signal has cancelled the
	// context, so a second Ctrl-C force-kills a sweep that is slow to
	// reach its next task boundary.
	context.AfterFunc(ctx, stop)
	err := run(ctx, os.Args[1:], os.Stdout, os.Stderr)
	if errors.Is(err, flag.ErrHelp) {
		return // -h printed usage; that is a successful exit
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

// run is the whole CLI behind a testable seam: parse args, expand the grid,
// execute, emit. stdout receives results, stderr progress logs.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list          = fs.Bool("list", false, "list workloads, runtimes and schedulers, then exit")
		benchmarks    = fs.String("benchmarks", "", "comma-separated benchmarks (default: all)")
		workload      = fs.String("workload", "", "comma-separated extra workload specs, e.g. synth:layered:seed=7 or synth:all")
		dumpProgram   = fs.String("dump-program", "", "record every workload of the grid as a JSON program file into this directory, then exit")
		replayProgram = fs.String("replay-program", "", "comma-separated program JSON files to replay across the grid instead of generating workloads")
		runtimes      = fs.String("runtimes", "", "comma-separated runtimes (default: all)")
		schedulers    = fs.String("schedulers", "", "comma-separated schedulers (default: fifo)")
		cores         = fs.String("cores", "", "comma-separated core counts (default: 32)")
		granularities = fs.String("granularities", "", "comma-separated granularities, 0 = Table II optimal (default: 0)")
		workers       = fs.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
		searchMode    = fs.String("search", "", "design-space search strategy (halving) instead of exhausting the grid; renders a leaderboard")
		objective     = fs.String("objective", "min:cycles", "search objective: [min:|max:]<cycles|seconds|energy|edp|power|latency_p50|latency_p90|latency_p99>")
		budget        = fs.Int("budget", 0, "search evaluation budget in grid points (0 = half the grid)")
		searchRungs   = fs.Int("search-rungs", 0, "search promotion rounds (0 = default)")
		searchSeed    = fs.Int64("search-seed", 0, "search sampling seed (same seed reproduces the search exactly)")
		searchTop     = fs.Int("search-top", 10, "leaderboard rows to render")
		remoteURL     = fs.String("remote", "", "submit the grid to a sweepd daemon at this base URL instead of simulating in-process")
		tenant        = fs.String("tenant", "", "tenant to attribute the remote submission to (requires -remote; daemon default when empty)")
		store         = fs.String("store", "", "directory persisting results as JSON for warm resume")
		format        = fs.String("format", "table", "output format: table, csv or json")
		out           = fs.String("o", "", "write results to a file instead of stdout")
		dryRun        = fs.Bool("dry-run", false, "print the expanded job list without simulating or touching the filesystem")
		verbose       = fs.Bool("v", false, "log per-simulation progress to stderr")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		fmt.Fprintf(stdout, "benchmarks: %s\n", strings.Join(workloads.Names(), ", "))
		var kinds []string
		for _, k := range taskrt.Kinds() {
			kinds = append(kinds, string(k))
		}
		fmt.Fprintf(stdout, "runtimes:   %s\n", strings.Join(kinds, ", "))
		fmt.Fprintf(stdout, "schedulers: %s\n", strings.Join(sched.Names(), ", "))
		fmt.Fprintln(stdout, "synthetic families (-workload synth:<family>:key=value,..., or synth:all):")
		for _, line := range workloads.SyntheticFamilies() {
			fmt.Fprintf(stdout, "  %s\n", line)
		}
		return nil
	}

	switch *format {
	case "table", "csv", "json":
	default:
		return fmt.Errorf("unknown format %q (table, csv, json)", *format)
	}
	benchList := *benchmarks
	if *workload != "" {
		if benchList != "" {
			benchList += ","
		}
		benchList += *workload
	}
	replayFiles := splitList(*replayProgram)
	if len(replayFiles) > 0 {
		if benchList != "" || *granularities != "" {
			return fmt.Errorf("-replay-program replaces the workload dimension; drop -benchmarks/-workload/-granularities")
		}
		if *dumpProgram != "" {
			return fmt.Errorf("-dump-program and -replay-program are mutually exclusive")
		}
		if *remoteURL != "" {
			return fmt.Errorf("-remote submits a grid; recorded programs cannot be replayed remotely yet")
		}
		// Validate only the non-workload dimensions.
		benchList = ""
	}
	if *remoteURL != "" && *store != "" {
		return fmt.Errorf("-store applies to in-process sweeps (the daemon owns the remote store); drop it with -remote")
	}
	if *searchMode != "" {
		if len(replayFiles) > 0 || *dumpProgram != "" {
			return fmt.Errorf("-search explores a grid; it cannot combine with -replay-program or -dump-program")
		}
	} else if *budget != 0 || *searchRungs != 0 || *searchSeed != 0 {
		return fmt.Errorf("-budget/-search-rungs/-search-seed configure a search; add -search halving")
	}
	if *remoteURL != "" && *dumpProgram != "" {
		return fmt.Errorf("-dump-program records locally generated programs; drop -remote to use it")
	}
	if *tenant != "" && *remoteURL == "" {
		return fmt.Errorf("-tenant attributes a daemon submission; it requires -remote")
	}
	grid, err := buildGrid(benchList, *runtimes, *schedulers, *cores, *granularities)
	if err != nil {
		return err
	}
	var jobs []runner.Job
	if len(replayFiles) > 0 {
		if jobs, err = replayJobs(grid, replayFiles); err != nil {
			return err
		}
	} else {
		jobs = grid.Jobs()
	}
	if len(jobs) == 0 {
		return fmt.Errorf("empty grid")
	}

	engine := &runner.Engine{
		Base:    core.DefaultConfig(taskrt.Software),
		Store:   runner.NewStore(),
		Workers: *workers,
	}
	if *verbose {
		engine.Log = stderr
	}

	// Everything above is side-effect free; a dry run (and a grid-expansion
	// error) must leave the filesystem untouched, so the store directory and
	// output file are only created past this point.
	if *dryRun {
		for _, j := range jobs {
			fmt.Fprintf(stdout, "%s  %s\n", engine.Key(j)[:12], j.Desc())
		}
		fmt.Fprintf(stdout, "%d jobs\n", len(jobs))
		return nil
	}

	if *dumpProgram != "" {
		return dumpPrograms(stdout, *dumpProgram, jobs, engine.Base)
	}

	var searchReq *service.SearchRequest
	if *searchMode != "" {
		searchReq = &service.SearchRequest{
			Strategy:  *searchMode,
			Objective: *objective,
			Budget:    *budget,
			Rungs:     *searchRungs,
			Seed:      *searchSeed,
			Top:       *searchTop,
		}
	}

	if *remoteURL != "" {
		return runRemote(ctx, stdout, stderr, *remoteURL, *tenant, grid, searchReq, len(jobs), *format, *out, *verbose)
	}

	if *store != "" {
		st, err := runner.NewDiskStore(*store)
		if err != nil {
			return err
		}
		engine.Store = st
	}

	if searchReq != nil {
		return runSearchLocal(ctx, stdout, stderr, engine, grid, searchReq, *format, *out, *verbose)
	}

	results, err := engine.RunAllContext(ctx, jobs)
	if err != nil {
		return err
	}
	points := make([]point, len(jobs))
	for i, j := range jobs {
		res := results[i]
		cfg := j.Config(engine.Base)
		scheduler := cfg.Scheduler
		if !j.Runtime.UsesSoftwareScheduler() {
			// Carbon and Task Superscalar schedule in hardware; reporting
			// a software policy here would be misleading.
			scheduler = "-"
		}
		points[i] = point{
			Key:         engine.Key(j),
			Benchmark:   j.Benchmark,
			Runtime:     string(j.Runtime),
			Scheduler:   scheduler,
			Cores:       cfg.Machine.Cores,
			Granularity: j.Granularity,
			Tasks:       res.Program.NumTasks(),
			Cycles:      res.Cycles,
			Seconds:     res.Seconds,
			EnergyJ:     res.Energy.EnergyJoules,
			AvgPowerW:   res.Energy.AveragePowerW,
			EDP:         res.Energy.EDP,
		}
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return emit(w, *format, points)
}

// runRemote submits the grid to a sweepd daemon and renders the streamed
// points exactly as a local run would: same fields, same job order, so a
// remote sweep's table is byte-identical to an in-process one. With a search
// stanza the daemon evaluates only the searcher's batches, the stream
// interleaves leaderboard rows, and the final leaderboard is rendered
// instead of the full point table.
func runRemote(ctx context.Context, stdout, stderr io.Writer, url, tenant string, grid runner.Grid,
	search *service.SearchRequest, wantPoints int, format, out string, verbose bool) error {
	if verbose {
		if search != nil {
			fmt.Fprintf(stderr, "submitting search over %d grid points to %s\n", wantPoints, url)
		} else {
			fmt.Fprintf(stderr, "submitting %d points to %s\n", wantPoints, url)
		}
	}
	req := service.SubmitRequest{
		Benchmarks:    grid.Benchmarks,
		Schedulers:    grid.Schedulers,
		Cores:         grid.Cores,
		Granularities: grid.Granularities,
		Tenant:        tenant,
		Search:        search,
	}
	for _, k := range grid.Runtimes {
		req.Runtimes = append(req.Runtimes, string(k))
	}
	cl := &remote.Client{URL: url}
	streamed, err := cl.Sweep(ctx, req)
	if err != nil {
		return err
	}
	if err := context.Cause(ctx); err != nil {
		return err
	}
	// Split result rows from the interleaved leaderboard rows; the last
	// leaderboard row is the search's final ranking.
	var board *service.Point
	results := streamed[:0]
	for i, p := range streamed {
		if p.Row == service.RowLeaderboard {
			board = &streamed[i]
			continue
		}
		results = append(results, p)
	}
	streamed = results
	// The stream arrives in completion order; the report is in grid order.
	sort.Slice(streamed, func(i, j int) bool { return streamed[i].Index < streamed[j].Index })
	var errs []error
	points := make([]point, 0, len(streamed))
	for _, p := range streamed {
		switch {
		case p.Cancelled:
			errs = append(errs, fmt.Errorf("%s/%s: cancelled on the daemon: %s", p.Benchmark, p.Runtime, p.Error))
		case p.Error != "" && search == nil:
			// A search ranks around failed points instead of aborting.
			errs = append(errs, errors.New(p.Error))
		}
		points = append(points, point{
			Key:         p.Key,
			Benchmark:   p.Benchmark,
			Runtime:     p.Runtime,
			Scheduler:   p.Scheduler,
			Cores:       p.Cores,
			Granularity: p.Granularity,
			Tasks:       p.Tasks,
			Cycles:      p.Cycles,
			Seconds:     p.Seconds,
			EnergyJ:     p.EnergyJ,
			AvgPowerW:   p.AvgPowerW,
			EDP:         p.EDP,
		})
	}
	if err := errors.Join(errs...); err != nil {
		return err
	}
	w := stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if search != nil {
		if board == nil {
			return fmt.Errorf("remote search delivered no leaderboard")
		}
		fmt.Fprintf(stderr, "search evaluated %d of %d grid points (%d saved)\n",
			board.Evaluated, wantPoints, wantPoints-board.Evaluated)
		return emitLeaderboard(w, format, search.Objective, board.Best)
	}
	if len(points) != wantPoints {
		return fmt.Errorf("remote sweep delivered %d of %d points", len(points), wantPoints)
	}
	return emit(w, format, points)
}

// runSearchLocal drives the successive-halving searcher over the in-process
// engine: each rung's batch executes through RunAllContext (deduplicated,
// store-memoized, worker pool), the observed objectives feed the next rung,
// and the final leaderboard is rendered.
func runSearchLocal(ctx context.Context, stdout, stderr io.Writer, engine *runner.Engine,
	grid runner.Grid, req *service.SearchRequest, format, out string, verbose bool) error {
	obj, err := search.ParseObjective(req.Objective)
	if err != nil {
		return err
	}
	space, err := search.NewSpace(grid)
	if err != nil {
		return err
	}
	searcher, err := search.New(space, search.Config{
		Strategy:  req.Strategy,
		Objective: obj,
		Budget:    req.Budget,
		Rungs:     req.Rungs,
		Seed:      req.Seed,
	})
	if err != nil {
		return err
	}
	for {
		batch := searcher.Next()
		if batch == nil {
			break
		}
		jobs := make([]runner.Job, len(batch))
		for i, idx := range batch {
			jobs[i] = space.Job(idx)
		}
		results, err := engine.RunAllContext(ctx, jobs)
		if cause := context.Cause(ctx); cause != nil {
			return cause
		}
		if err != nil && verbose {
			fmt.Fprintf(stderr, "search rung %d: some points failed: %v\n", searcher.Rung(), err)
		}
		for i, idx := range batch {
			res := results[i]
			var value float64
			failed := res == nil
			if !failed {
				if value, err = obj.Value(res); err != nil {
					failed = true
				}
			}
			var cycles int64
			if res != nil {
				cycles = res.Cycles
			}
			searcher.Observe(idx, value, cycles, failed)
		}
		if verbose {
			fmt.Fprintf(stderr, "search rung %d: %d/%d points evaluated\n",
				searcher.Rung(), searcher.Evaluated(), searcher.Config().Budget)
		}
	}
	fmt.Fprintf(stderr, "search evaluated %d of %d grid points (%d saved)\n",
		searcher.Evaluated(), space.Len(), space.Len()-searcher.Evaluated())
	top := req.Top
	if top <= 0 {
		top = 10
	}
	entries := make([]service.LeaderboardEntry, 0, top)
	for _, e := range searcher.Leaderboard(top) {
		cfg := e.Job.Config(engine.Base)
		scheduler := cfg.Scheduler
		if !e.Job.Runtime.UsesSoftwareScheduler() {
			scheduler = "-"
		}
		entries = append(entries, service.LeaderboardEntry{
			Index:       e.Index,
			Benchmark:   e.Job.Benchmark,
			Runtime:     string(e.Job.Runtime),
			Scheduler:   scheduler,
			Cores:       cfg.Machine.Cores,
			Granularity: e.Job.Granularity,
			Value:       e.Value,
		})
	}
	w := stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return emitLeaderboard(w, format, obj.String(), entries)
}

// emitLeaderboard renders a search's final ranking in the requested format.
func emitLeaderboard(w io.Writer, format, objective string, entries []service.LeaderboardEntry) error {
	switch format {
	case "json":
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(entries)
	case "table", "csv":
		t := stats.NewTable("Search leaderboard ("+objective+")",
			"rank", "benchmark", "runtime", "scheduler", "cores", "granularity", "value")
		for i, e := range entries {
			t.AddRowValues(i+1, e.Benchmark, e.Runtime, e.Scheduler, e.Cores,
				e.Granularity, fmt.Sprintf("%.6g", e.Value))
		}
		var err error
		if format == "csv" {
			_, err = fmt.Fprintln(w, t.CSV())
		} else {
			_, err = fmt.Fprintln(w, t.String())
		}
		return err
	default:
		return fmt.Errorf("sweep: unknown format %q (table, csv, json)", format)
	}
}

// replayJobs expands the grid's runtime/scheduler/core dimensions over
// recorded programs instead of generated workloads. Each program file is
// decoded once and shared by every point that replays it.
func replayJobs(grid runner.Grid, files []string) ([]runner.Job, error) {
	// Reuse Grid.Jobs for the hardware-scheduler normalization; the
	// placeholder benchmark never reaches a generator because every job
	// carries an explicit Program.
	grid.Benchmarks = []string{"replay"}
	grid.Granularities = []int64{0}
	templates := grid.Jobs()
	var jobs []runner.Job
	for _, file := range files {
		prog, err := task.ReadProgramFile(file)
		if err != nil {
			return nil, err
		}
		for _, j := range templates {
			j.Benchmark = prog.Name
			j.Program = prog
			j.Label = "replay"
			jobs = append(jobs, j)
		}
	}
	return jobs, nil
}

// dumpPrograms records every distinct workload of the job list as a JSON
// program file under dir (the record half of record/replay).
func dumpPrograms(stdout io.Writer, dir string, jobs []runner.Job, base core.Config) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("create dump directory: %w", err)
	}
	type point struct {
		bench string
		gran  int64
	}
	seen := make(map[point]bool)
	count := 0
	for _, j := range jobs {
		bench, err := workloads.ByName(j.Benchmark)
		if err != nil {
			return err
		}
		// Granularity 0 means "optimal", which depends on the runtime
		// class (Table II): benchmarks whose software and TDM optima
		// differ record one program per class so each replay reproduces
		// its direct run exactly.
		gran := j.Granularity
		if gran == 0 {
			gran = bench.OptimalFor(j.Runtime.UsesDMU())
		}
		pt := point{j.Benchmark, gran}
		if seen[pt] {
			continue
		}
		seen[pt] = true
		suffix := j.Granularity
		if suffix == 0 && bench.SWOptimal != bench.TDMOptimal {
			suffix = gran
		}
		prog := bench.Generate(gran, base.Machine)
		path := filepath.Join(dir, programFileName(prog.Name, suffix))
		if err := task.WriteProgramFile(path, prog); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "recorded %-60s %6d tasks -> %s\n", prog.Name, prog.NumTasks(), path)
		count++
	}
	fmt.Fprintf(stdout, "%d programs recorded\n", count)
	return nil
}

// programFileName sanitizes a program name into a file name, suffixed with
// the explicit granularity when one was requested.
func programFileName(name string, gran int64) string {
	s := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
			return r
		default:
			return '_'
		}
	}, name)
	if gran != 0 {
		s += fmt.Sprintf("-g%d", gran)
	}
	return s + ".json"
}

// buildGrid parses the comma-separated dimension flags.
func buildGrid(benchmarks, runtimes, schedulers, cores, granularities string) (runner.Grid, error) {
	g := runner.Grid{
		Benchmarks: splitWorkloads(benchmarks),
		Schedulers: splitList(schedulers),
	}
	for _, r := range splitList(runtimes) {
		g.Runtimes = append(g.Runtimes, taskrt.Kind(r))
	}
	for _, c := range splitList(cores) {
		n, err := strconv.Atoi(c)
		if err != nil || n <= 0 {
			return g, fmt.Errorf("invalid core count %q", c)
		}
		g.Cores = append(g.Cores, n)
	}
	for _, s := range splitList(granularities) {
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil || n < 0 {
			return g, fmt.Errorf("invalid granularity %q", s)
		}
		g.Granularities = append(g.Granularities, n)
	}
	return g, g.Validate()
}

// splitWorkloads splits a comma-separated workload list while keeping the
// key=value parameter block of a synth spec attached to its spec: a fragment
// containing "=" continues the previous synthetic spec unless it starts a
// new one.
func splitWorkloads(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part == "" {
			continue
		}
		if len(out) > 0 && strings.Contains(part, "=") && !strings.HasPrefix(part, "synth:") {
			out[len(out)-1] += "," + part
			continue
		}
		out = append(out, part)
	}
	return out
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// emit writes the sweep results in the requested format.
func emit(w io.Writer, format string, points []point) error {
	switch format {
	case "json":
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(points)
	case "table", "csv":
		t := stats.NewTable("Sweep results",
			"benchmark", "runtime", "scheduler", "cores", "granularity",
			"tasks", "cycles", "seconds", "energy (J)", "EDP")
		for _, p := range points {
			t.AddRowValues(p.Benchmark, p.Runtime, p.Scheduler, p.Cores, p.Granularity,
				p.Tasks, p.Cycles, fmt.Sprintf("%.6f", p.Seconds),
				fmt.Sprintf("%.6f", p.EnergyJ), fmt.Sprintf("%.6g", p.EDP))
		}
		var err error
		if format == "csv" {
			_, err = fmt.Fprintln(w, t.CSV())
		} else {
			_, err = fmt.Fprintln(w, t.String())
		}
		return err
	default:
		return fmt.Errorf("sweep: unknown format %q (table, csv, json)", format)
	}
}

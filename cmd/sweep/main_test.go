package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestDryRunHasNoSideEffects pins the -dry-run contract: combined with
// -store (and -o) it must not create the store directory, the output file, or
// anything else on the filesystem.
func TestDryRunHasNoSideEffects(t *testing.T) {
	parent := t.TempDir()
	storeDir := filepath.Join(parent, "results")
	outFile := filepath.Join(parent, "out.json")
	var stdout, stderr bytes.Buffer
	err := run(context.Background(), []string{
		"-dry-run",
		"-store", storeDir,
		"-o", outFile,
		"-benchmarks", "histogram",
		"-runtimes", "software,tdm",
	}, &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(storeDir); !os.IsNotExist(err) {
		t.Errorf("-dry-run created the store directory: %v", err)
	}
	if _, err := os.Stat(outFile); !os.IsNotExist(err) {
		t.Errorf("-dry-run created the output file: %v", err)
	}
	entries, err := os.ReadDir(parent)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("-dry-run left files behind: %v", entries)
	}
	if !strings.Contains(stdout.String(), "2 jobs") {
		t.Errorf("dry run output missing job count:\n%s", stdout.String())
	}
	// -dump-program combined with -dry-run must stay side-effect free too.
	dumpDir := filepath.Join(parent, "programs")
	if err := run(context.Background(), []string{
		"-dry-run", "-dump-program", dumpDir, "-benchmarks", "histogram", "-runtimes", "software",
	}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dumpDir); !os.IsNotExist(err) {
		t.Errorf("-dry-run -dump-program created the dump directory: %v", err)
	}
}

// TestRunCancelledContext: a sweep started under a dead context simulates
// nothing and reports the cancellation.
func TestRunCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var stdout, stderr bytes.Buffer
	err := run(ctx, []string{"-benchmarks", "histogram", "-runtimes", "software"}, &stdout, &stderr)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if stdout.Len() != 0 {
		t.Errorf("cancelled sweep emitted results:\n%s", stdout.String())
	}
}

// TestHelpIsNotAnError: -h must surface flag.ErrHelp so main can exit 0.
func TestHelpIsNotAnError(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run(context.Background(), []string{"-h"}, &stdout, &stderr)
	if !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("run(-h) = %v, want flag.ErrHelp", err)
	}
	if !strings.Contains(stderr.String(), "-benchmarks") {
		t.Errorf("usage output missing flags:\n%s", stderr.String())
	}
}

// TestRunRejectsBadSpecs: grid validation errors surface before any
// simulation or filesystem work.
func TestRunRejectsBadSpecs(t *testing.T) {
	var stdout, stderr bytes.Buffer
	for _, args := range [][]string{
		{"-benchmarks", "nope"},
		{"-workload", "synth:chain:widht=8"},
		{"-workload", "synth:chain:fanout=2"},
		{"-format", "xml"},
		{"-runtimes", "nope"},
	} {
		if err := run(context.Background(), args, &stdout, &stderr); err == nil {
			t.Errorf("run(%v) accepted invalid arguments", args)
		}
	}
}

package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/runner"
	"repro/internal/service"
	"repro/internal/taskrt"
)

// TestDryRunHasNoSideEffects pins the -dry-run contract: combined with
// -store (and -o) it must not create the store directory, the output file, or
// anything else on the filesystem.
func TestDryRunHasNoSideEffects(t *testing.T) {
	parent := t.TempDir()
	storeDir := filepath.Join(parent, "results")
	outFile := filepath.Join(parent, "out.json")
	var stdout, stderr bytes.Buffer
	err := run(context.Background(), []string{
		"-dry-run",
		"-store", storeDir,
		"-o", outFile,
		"-benchmarks", "histogram",
		"-runtimes", "software,tdm",
	}, &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(storeDir); !os.IsNotExist(err) {
		t.Errorf("-dry-run created the store directory: %v", err)
	}
	if _, err := os.Stat(outFile); !os.IsNotExist(err) {
		t.Errorf("-dry-run created the output file: %v", err)
	}
	entries, err := os.ReadDir(parent)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("-dry-run left files behind: %v", entries)
	}
	if !strings.Contains(stdout.String(), "2 jobs") {
		t.Errorf("dry run output missing job count:\n%s", stdout.String())
	}
	// -dump-program combined with -dry-run must stay side-effect free too.
	dumpDir := filepath.Join(parent, "programs")
	if err := run(context.Background(), []string{
		"-dry-run", "-dump-program", dumpDir, "-benchmarks", "histogram", "-runtimes", "software",
	}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dumpDir); !os.IsNotExist(err) {
		t.Errorf("-dry-run -dump-program created the dump directory: %v", err)
	}
}

// TestRunCancelledContext: a sweep started under a dead context simulates
// nothing and reports the cancellation.
func TestRunCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var stdout, stderr bytes.Buffer
	err := run(ctx, []string{"-benchmarks", "histogram", "-runtimes", "software"}, &stdout, &stderr)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if stdout.Len() != 0 {
		t.Errorf("cancelled sweep emitted results:\n%s", stdout.String())
	}
}

// TestHelpIsNotAnError: -h must surface flag.ErrHelp so main can exit 0.
func TestHelpIsNotAnError(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run(context.Background(), []string{"-h"}, &stdout, &stderr)
	if !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("run(-h) = %v, want flag.ErrHelp", err)
	}
	if !strings.Contains(stderr.String(), "-benchmarks") {
		t.Errorf("usage output missing flags:\n%s", stderr.String())
	}
}

// TestRemoteSweepMatchesLocal: the same grid run in-process and via
// -remote against a daemon — including a daemon coordinating a worker
// fleet — produces byte-identical output in every format.
func TestRemoteSweepMatchesLocal(t *testing.T) {
	args := []string{"-benchmarks", "histogram", "-runtimes", "software,tdm", "-format", "csv"}

	var local bytes.Buffer
	var stderr bytes.Buffer
	if err := run(context.Background(), args, &local, &stderr); err != nil {
		t.Fatal(err)
	}

	// A single-node daemon: same base configuration as the CLI.
	engine := &runner.Engine{Base: core.DefaultConfig(taskrt.Software), Store: runner.NewStore()}
	srv := service.New(engine, 2)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var remote bytes.Buffer
	if err := run(context.Background(), append([]string{"-remote", ts.URL}, args...), &remote, &stderr); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(local.Bytes(), remote.Bytes()) {
		t.Errorf("remote sweep differs from local run:\nlocal:\n%s\nremote:\n%s", local.String(), remote.String())
	}

	// A coordinator sharding across two (in-process) workers must render
	// the same bytes again.
	fleetEngine := &runner.Engine{Base: core.DefaultConfig(taskrt.Software), Store: runner.NewStore()}
	fleet := service.New(fleetEngine, 2)
	fleet.RegisterWorker("local-a", runner.Local{Base: fleetEngine.Base}, 1)
	fleet.RegisterWorker("local-b", runner.Local{Base: fleetEngine.Base}, 1)
	fts := httptest.NewServer(fleet.Handler())
	defer fts.Close()

	var sharded bytes.Buffer
	if err := run(context.Background(), append([]string{"-remote", fts.URL}, args...), &sharded, &stderr); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(local.Bytes(), sharded.Bytes()) {
		t.Errorf("sharded sweep differs from local run:\nlocal:\n%s\nsharded:\n%s", local.String(), sharded.String())
	}
}

// TestRemoteFlagValidation: flag combinations that cannot work remotely are
// rejected up front.
func TestRemoteFlagValidation(t *testing.T) {
	var stdout, stderr bytes.Buffer
	for _, args := range [][]string{
		{"-remote", "http://localhost:1", "-store", "somewhere"},
		{"-remote", "http://localhost:1", "-replay-program", "prog.json"},
		{"-remote", "http://localhost:1", "-dump-program", "progs/"},
	} {
		if err := run(context.Background(), args, &stdout, &stderr); err == nil {
			t.Errorf("run(%v) accepted an impossible flag combination", args)
		}
	}
}

// TestRunRejectsBadSpecs: grid validation errors surface before any
// simulation or filesystem work.
func TestRunRejectsBadSpecs(t *testing.T) {
	var stdout, stderr bytes.Buffer
	for _, args := range [][]string{
		{"-benchmarks", "nope"},
		{"-workload", "synth:chain:widht=8"},
		{"-workload", "synth:chain:fanout=2"},
		{"-format", "xml"},
		{"-runtimes", "nope"},
	} {
		if err := run(context.Background(), args, &stdout, &stderr); err == nil {
			t.Errorf("run(%v) accepted invalid arguments", args)
		}
	}
}

// Command experiments regenerates the figures and tables of the paper's
// evaluation (Sections V and VI). Each experiment prints one or more tables
// whose rows mirror the corresponding figure's data series.
//
// Examples:
//
//	experiments -list
//	experiments -experiment fig12
//	experiments -all -benchmarks cholesky,qr,dedup
//	experiments -all -o results.txt -v
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	var (
		list       = flag.Bool("list", false, "list the available experiments and exit")
		experiment = flag.String("experiment", "", "run a single experiment by id (fig2, fig6, ..., tab3)")
		all        = flag.Bool("all", false, "run every experiment")
		benchmarks = flag.String("benchmarks", "", "comma-separated benchmark subset (default: all nine)")
		cores      = flag.Int("cores", 32, "number of cores")
		csv        = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		out        = flag.String("o", "", "write results to a file instead of stdout")
		verbose    = flag.Bool("v", false, "log per-simulation progress to stderr")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		return
	}
	if !*all && *experiment == "" {
		fmt.Fprintln(os.Stderr, "experiments: pass -all, -experiment <id>, or -list")
		os.Exit(2)
	}

	opt := experiments.DefaultOptions()
	opt.Machine.Cores = *cores
	if *benchmarks != "" {
		opt.Benchmarks = strings.Split(*benchmarks, ",")
	}
	if *verbose {
		opt.Log = os.Stderr
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}

	run := func(e experiments.Experiment) error {
		fmt.Fprintf(w, "\n######## %s — %s\n\n", e.ID, e.Title)
		tables, err := e.Run(opt)
		if err != nil {
			return err
		}
		for _, t := range tables {
			if *csv {
				fmt.Fprintf(w, "# %s\n%s\n", t.Title, t.CSV())
			} else {
				fmt.Fprintln(w, t.String())
			}
		}
		return nil
	}

	if *all {
		for _, e := range experiments.All() {
			if err := run(e); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
		}
		return
	}
	e, err := experiments.ByID(*experiment)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(2)
	}
	if err := run(e); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

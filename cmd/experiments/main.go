// Command experiments regenerates the figures and tables of the paper's
// evaluation (Sections V and VI). Each experiment prints one or more tables
// whose rows mirror the corresponding figure's data series.
//
// Simulation points run concurrently through the sweep engine
// (internal/runner): each experiment's point set is prewarmed over -workers
// workers before its tables are assembled, and points shared between
// experiments simulate only once. With -store DIR results persist across
// invocations, so a rerun (or a different experiment over the same points)
// starts warm.
//
// Examples:
//
//	experiments -list
//	experiments -experiment fig12
//	experiments -all -benchmarks cholesky,qr,dedup
//	experiments -all -o results.txt -v
//	experiments -all -workers 16 -store results-cache/
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/experiments"
	"repro/internal/runner"
)

func main() {
	// Ctrl-C or SIGTERM cancels the regeneration: in-flight simulations
	// stop at their next task boundary, and points already persisted to
	// -store stay warm for the next invocation.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// Deregister the handler once the first signal has cancelled the
	// context, so a second Ctrl-C force-kills a run that is slow to reach
	// its next task boundary.
	context.AfterFunc(ctx, stop)
	var (
		list       = flag.Bool("list", false, "list the available experiments and exit")
		experiment = flag.String("experiment", "", "run a single experiment by id (fig2, fig6, ..., tab3)")
		all        = flag.Bool("all", false, "run every experiment")
		benchmarks = flag.String("benchmarks", "", "comma-separated benchmark subset (default: all nine)")
		cores      = flag.Int("cores", 32, "number of cores")
		csv        = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		out        = flag.String("o", "", "write results to a file instead of stdout")
		verbose    = flag.Bool("v", false, "log per-simulation progress to stderr")
		workers    = flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
		store      = flag.String("store", "", "directory persisting results as JSON for warm reruns")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		return
	}
	if !*all && *experiment == "" {
		fmt.Fprintln(os.Stderr, "experiments: pass -all, -experiment <id>, or -list")
		os.Exit(2)
	}

	opt := experiments.DefaultOptions()
	opt.Machine.Cores = *cores
	opt.Workers = *workers
	if *benchmarks != "" {
		opt.Benchmarks = strings.Split(*benchmarks, ",")
	}
	if *verbose {
		opt.Log = os.Stderr
	}
	if *store != "" {
		st, err := runner.NewDiskStore(*store)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		opt.Cache = st
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}

	run := func(e experiments.Experiment) error {
		fmt.Fprintf(w, "\n######## %s — %s\n\n", e.ID, e.Title)
		// Execute the experiment's simulation points in parallel before
		// assembling its tables sequentially from the warm cache.
		jobs, err := experiments.JobsFor(opt, e)
		if err != nil {
			return err
		}
		if err := experiments.PrewarmContext(ctx, opt, jobs); err != nil {
			return err
		}
		tables, err := e.Run(opt)
		if err != nil {
			return err
		}
		for _, t := range tables {
			if *csv {
				fmt.Fprintf(w, "# %s\n%s\n", t.Title, t.CSV())
			} else {
				fmt.Fprintln(w, t.String())
			}
		}
		return nil
	}

	if *all {
		// Prewarm the deduplicated union of every experiment's points in
		// one parallel sweep, so the per-experiment runs below only see
		// cache hits (no worker barrier at experiment boundaries).
		jobs, err := experiments.JobsFor(opt, experiments.All()...)
		if err == nil {
			err = experiments.PrewarmContext(ctx, opt, jobs)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		for _, e := range experiments.All() {
			if err := run(e); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
		}
		return
	}
	e, err := experiments.ByID(*experiment)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(2)
	}
	if err := run(e); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

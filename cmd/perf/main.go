// Command perf runs the repository's pinned benchmark suite and manages the
// performance trajectory.
//
// Run the quick (PR-gating) suite and write the trajectory file:
//
//	go run ./cmd/perf -quick -out bench.json
//
// Run the full suite (defaults to BENCH_<date>.json):
//
//	go run ./cmd/perf
//
// Compare two result files, failing (exit 1) on any ns/op regression beyond
// the threshold:
//
//	go run ./cmd/perf -diff -threshold 0.15 perf/baseline.json bench.json
//
// CI runs the quick suite on every pull request and diffs against the
// committed perf/baseline.json; refresh the baseline (and say why in the
// commit) whenever a PR intentionally shifts performance.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"time"

	"repro/internal/perf"
)

func main() {
	var (
		quick     = flag.Bool("quick", false, "run the quick (PR-gating) probe subset")
		out       = flag.String("out", "", "output file (default BENCH_<date>.json)")
		benchRe   = flag.String("bench", "", "only run probes matching this regexp")
		list      = flag.Bool("list", false, "list probe names and exit")
		diff      = flag.Bool("diff", false, "compare two result files: -diff OLD NEW")
		threshold = flag.Float64("threshold", 0.15, "relative ns/op regression gate for -diff")
		quiet     = flag.Bool("q", false, "suppress per-probe progress output")
	)
	flag.Parse()

	if *diff {
		if flag.NArg() != 2 {
			fatalf("usage: perf -diff [-threshold 0.15] OLD.json NEW.json")
		}
		os.Exit(runDiff(flag.Arg(0), flag.Arg(1), *threshold))
	}

	suiteName := "full"
	if *quick {
		suiteName = "quick"
	}
	probes := perf.Suite(*quick)

	if *list {
		for _, p := range probes {
			fmt.Println(p.Name)
		}
		return
	}

	var filter *regexp.Regexp
	if *benchRe != "" {
		re, err := regexp.Compile(*benchRe)
		if err != nil {
			fatalf("bad -bench regexp: %v", err)
		}
		filter = re
	}

	rep := perf.NewReport(suiteName)
	// The interface must be assigned nil directly: a nil *os.File boxed in
	// io.Writer would defeat perf.Run's log != nil guard.
	var log io.Writer = os.Stderr
	if *quiet {
		log = nil
	}
	if err := perf.Run(rep, probes, filter, log); err != nil {
		fatalf("%v", err)
	}
	if len(rep.Results) == 0 {
		fatalf("no probe matched -bench %q", *benchRe)
	}

	path := *out
	if path == "" {
		path = perf.DefaultFileName(time.Now())
	}
	if err := rep.WriteFile(path); err != nil {
		fatalf("write %s: %v", path, err)
	}
	fmt.Printf("wrote %d results to %s (git %.12s)\n", len(rep.Results), path, rep.GitSHA)
}

func runDiff(oldPath, newPath string, threshold float64) int {
	old, err := perf.ReadReportFile(oldPath)
	if err != nil {
		fatalf("%v", err)
	}
	cur, err := perf.ReadReportFile(newPath)
	if err != nil {
		fatalf("%v", err)
	}
	entries := perf.Diff(old, cur, threshold)
	perf.WriteDiff(os.Stdout, entries)
	if regs := perf.Regressions(entries); len(regs) > 0 {
		fmt.Printf("\nFAIL: %d probe(s) regressed more than %.0f%% vs %s\n",
			len(regs), threshold*100, oldPath)
		return 1
	}
	fmt.Printf("\nOK: no probe regressed more than %.0f%% vs %s\n", threshold*100, oldPath)
	return 0
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}

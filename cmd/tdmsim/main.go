// Command tdmsim runs one benchmark under one runtime-system configuration
// and prints the timing, phase-breakdown and energy results.
//
// Examples:
//
//	tdmsim -benchmark cholesky -runtime tdm -scheduler locality
//	tdmsim -benchmark dedup -runtime software -cores 16
//	tdmsim -benchmark qr -runtime tasksuperscalar -timeline
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/taskrt"
)

func main() {
	var (
		benchmark   = flag.String("benchmark", "cholesky", "benchmark to run ("+strings.Join(core.Benchmarks(), ", ")+")")
		runtime     = flag.String("runtime", "tdm", "runtime system (software, tdm, carbon, tasksuperscalar)")
		scheduler   = flag.String("scheduler", "fifo", "software scheduler ("+strings.Join(core.Schedulers(), ", ")+")")
		cores       = flag.Int("cores", 32, "number of cores")
		granularity = flag.Int64("granularity", 0, "task granularity (0 = Table II optimal for the runtime)")
		latency     = flag.Int("dmu-latency", 1, "DMU structure access latency in cycles")
		timeline    = flag.Bool("timeline", false, "print an ASCII execution timeline")
		showDMU     = flag.Bool("dmu-stats", false, "print DMU structure statistics")
	)
	flag.Parse()

	cfg := core.DefaultConfig(taskrt.Kind(*runtime))
	cfg.Scheduler = *scheduler
	cfg.Machine.Cores = *cores
	cfg.DMU.AccessLatency = *latency
	cfg.RecordTimeline = *timeline

	var res *core.Result
	var err error
	if *granularity == 0 {
		res, err = core.RunBenchmark(*benchmark, cfg)
	} else {
		res, err = core.RunBenchmarkAt(*benchmark, *granularity, cfg)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tdmsim:", err)
		os.Exit(1)
	}

	fmt.Printf("benchmark      %s (%d tasks, granularity %d %s)\n",
		res.Benchmark, res.Program.NumTasks(), res.Program.Granularity, res.Program.GranularityUnit)
	fmt.Printf("configuration  %s\n", core.Describe(cfg))
	fmt.Printf("execution time %d cycles  (%.3f ms)\n", res.Cycles, res.Seconds*1e3)
	fmt.Printf("energy         %.4f J   avg power %.2f W   EDP %.6f Js\n",
		res.Energy.EnergyJoules, res.Energy.AveragePowerW, res.Energy.EDP)
	fmt.Printf("master         %s\n", res.Master.String())
	fmt.Printf("workers        %s\n", res.Workers.String())
	fmt.Printf("idle fraction  %s   locality hit rate %.1f%%\n",
		stats.Percent(res.IdleFraction()), 100*res.LocalityHitRate)

	if *showDMU && res.DMU != nil {
		s := res.DMU
		fmt.Printf("\nDMU statistics\n")
		fmt.Printf("  ops: create=%d add_dep=%d submit=%d finish=%d get_ready=%d\n",
			s.Ops.CreateOps, s.Ops.AddDepOps, s.Ops.SubmitOps, s.Ops.FinishOps, s.Ops.GetReadyOps)
		fmt.Printf("  in-flight peaks: tasks=%d deps=%d  ready queue peak=%d\n",
			s.Ops.MaxInFlightTasks, s.Ops.MaxInFlightDeps, s.ReadyMaxLen)
		fmt.Printf("  TAT: occupancy max=%d  DAT: occupancy max=%d avg occupied sets=%.1f\n",
			s.TAT.MaxOccupied, s.DAT.MaxOccupied, s.DAT.AvgOccupiedSets)
		for _, la := range s.ListArrays {
			fmt.Printf("  %s: accesses=%d max in use=%d\n", la.Name, la.Accesses, la.MaxInUse)
		}
		fmt.Printf("  total structure accesses: %d\n", s.TotalAccesses)
	}

	if *timeline && res.Timeline != nil {
		fmt.Printf("\nexecution timeline (R=runtime, #=task, .=idle)\n")
		fmt.Print(res.Timeline.ASCII(100))
	}
}

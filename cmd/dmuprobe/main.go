// Command dmuprobe drives a standalone Dependence Management Unit with the
// task/dependence stream of a benchmark (no timing simulation) and dumps the
// resulting structure occupancies and access counts. It is the tool used to
// explore DAT index-bit policies and structure sizing interactively.
//
// Examples:
//
//	dmuprobe -benchmark cholesky
//	dmuprobe -benchmark qr -dat 512 -index static0
//	dmuprobe -benchmark histogram -la 256
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/dmu"
	"repro/internal/machine"
	"repro/internal/task"
	"repro/internal/workloads"
)

func main() {
	var (
		benchmark = flag.String("benchmark", "cholesky", "benchmark whose dependence stream to replay")
		tat       = flag.Int("tat", 2048, "TAT entries")
		dat       = flag.Int("dat", 2048, "DAT entries")
		la        = flag.Int("la", 1024, "entries in each list array")
		index     = flag.String("index", "dynamic", "DAT index policy: dynamic or static<N>")
		window    = flag.Int("window", 0, "maximum in-flight tasks before retiring the oldest (0 = retire only on structure pressure)")
	)
	flag.Parse()

	bench, err := workloads.ByName(*benchmark)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dmuprobe:", err)
		os.Exit(2)
	}
	cfg := dmu.DefaultConfig()
	cfg.TATEntries, cfg.DATEntries = *tat, *dat
	cfg.SLAEntries, cfg.DLAEntries, cfg.RLAEntries = *la, *la, *la
	cfg.ReadyQueueEntries = *tat
	switch {
	case *index == "dynamic":
		cfg.DATIndex = dmu.DynamicIndex()
	case strings.HasPrefix(*index, "static"):
		bit, err := strconv.Atoi(strings.TrimPrefix(*index, "static"))
		if err != nil || bit < 0 {
			fmt.Fprintln(os.Stderr, "dmuprobe: invalid -index", *index)
			os.Exit(2)
		}
		cfg.DATIndex = dmu.StaticIndex(uint(bit))
	default:
		fmt.Fprintln(os.Stderr, "dmuprobe: invalid -index", *index)
		os.Exit(2)
	}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "dmuprobe:", err)
		os.Exit(2)
	}

	prog := bench.GenerateOptimal(true, machine.Default())
	unit := dmu.New(cfg)
	if err := replay(unit, prog, *window); err != nil {
		fmt.Fprintln(os.Stderr, "dmuprobe:", err)
		os.Exit(1)
	}

	snap := unit.Snapshot()
	fmt.Printf("benchmark          %s (%d tasks, %d dependence annotations)\n",
		prog.Name, prog.NumTasks(), prog.NumDeps())
	fmt.Printf("configuration      TAT=%d DAT=%d LA=%d index=%s\n", *tat, *dat, *la, cfg.DATIndex)
	fmt.Printf("ops                create=%d add_dep=%d finish=%d get_ready=%d\n",
		snap.Ops.CreateOps, snap.Ops.AddDepOps, snap.Ops.FinishOps, snap.Ops.GetReadyOps)
	fmt.Printf("edges created      %d\n", snap.Ops.EdgesCreated)
	fmt.Printf("in-flight peaks    tasks=%d deps=%d\n", snap.Ops.MaxInFlightTasks, snap.Ops.MaxInFlightDeps)
	fmt.Printf("TAT                lookups=%d inserts=%d conflicts=%d max occupancy=%d/%d\n",
		snap.TAT.Lookups, snap.TAT.Inserts, snap.TAT.SetConflicts, snap.TAT.MaxOccupied, *tat)
	fmt.Printf("DAT                lookups=%d inserts=%d conflicts=%d max occupancy=%d/%d avg occupied sets=%.1f/%d\n",
		snap.DAT.Lookups, snap.DAT.Inserts, snap.DAT.SetConflicts, snap.DAT.MaxOccupied, *dat,
		snap.DAT.AvgOccupiedSets, snap.DAT.NumSets)
	for _, s := range snap.ListArrays {
		fmt.Printf("%-18s accesses=%d max in use=%d/%d\n", s.Name, s.Accesses, s.MaxInUse, *la)
	}
	fmt.Printf("total accesses     %d\n", snap.TotalAccesses)
	fmt.Printf("quiescent at end   %v\n", unit.Quiescent())
}

// replay pushes the program through the DMU in creation order, retiring ready
// tasks whenever a structure fills (or the in-flight window is reached) and
// draining everything at the end.
func replay(unit *dmu.DMU, prog *task.Program, window int) error {
	desc := func(id task.ID) uint64 { return 0x7f40_0000_0000 + uint64(id)*320 }
	inFlight := 0
	retireOne := func() error {
		rt, _, ok := unit.GetReadyTask()
		if !ok {
			return fmt.Errorf("structures full but no ready task to retire")
		}
		if _, err := unit.FinishTask(rt.DescAddr); err != nil {
			return err
		}
		inFlight--
		return nil
	}
	for _, spec := range prog.Tasks() {
		d := desc(spec.ID)
		for window > 0 && inFlight >= window {
			if err := retireOne(); err != nil {
				return err
			}
		}
		for !unit.CanCreateTask(d) {
			if err := retireOne(); err != nil {
				return err
			}
		}
		if _, err := unit.CreateTask(d); err != nil {
			return err
		}
		inFlight++
		for _, dep := range spec.Deps {
			for !unit.CanAddDependence(d, dep.Addr, dep.Size, dep.Dir) {
				if err := retireOne(); err != nil {
					return err
				}
			}
			if _, err := unit.AddDependence(d, dep.Addr, dep.Size, dep.Dir); err != nil {
				return err
			}
		}
		if _, err := unit.SubmitTask(d); err != nil {
			return err
		}
	}
	for inFlight > 0 {
		if err := retireOne(); err != nil {
			return err
		}
	}
	return nil
}

// Package repro's top-level benchmarks regenerate every figure and table of
// the paper's evaluation through the experiment drivers, plus a set of
// micro-benchmarks of the core hardware models. One benchmark iteration
// equals one full regeneration of the corresponding figure/table, so
//
//	go test -bench=. -benchmem
//
// reproduces the entire evaluation. The sub-benchmarks named "Quick" use a
// benchmark subset so the harness can also be exercised rapidly:
//
//	go test -bench='Quick|Micro' -benchmem
package repro

import (
	"fmt"
	"io"
	"testing"

	"repro/internal/core"
	"repro/internal/dmu"
	"repro/internal/experiments"
	"repro/internal/machine"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/task"
	"repro/internal/workloads"
)

// fullOptions returns experiment options covering all nine benchmarks at the
// paper's scale (32 cores).
func fullOptions() experiments.Options {
	return experiments.DefaultOptions()
}

// quickOptions restricts the experiments to three representative benchmarks
// (one fine-grained linear-algebra kernel, one pipeline, one data-parallel
// benchmark) so a single iteration stays in the seconds range.
func quickOptions() experiments.Options {
	opt := experiments.DefaultOptions()
	opt.Benchmarks = []string{"cholesky", "dedup", "histogram"}
	return opt
}

// benchExperiment runs one experiment driver per iteration and reports the
// number of simulations and table rows produced.
func benchExperiment(b *testing.B, id string, opt experiments.Options) {
	b.Helper()
	exp, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	rows := 0
	for i := 0; i < b.N; i++ {
		// A fresh cache each iteration so every iteration does the full
		// set of simulations.
		opt.Cache = experiments.NewCache()
		tables, err := exp.Run(opt)
		if err != nil {
			b.Fatal(err)
		}
		rows = 0
		for _, t := range tables {
			rows += len(t.Rows)
		}
	}
	b.ReportMetric(float64(rows), "rows")
}

// --- One benchmark per paper figure/table (full benchmark set) ---

func BenchmarkFig2Breakdown(b *testing.B)         { benchExperiment(b, "fig2", fullOptions()) }
func BenchmarkFig6Granularity(b *testing.B)       { benchExperiment(b, "fig6", fullOptions()) }
func BenchmarkTable2Characteristics(b *testing.B) { benchExperiment(b, "tab2", fullOptions()) }
func BenchmarkFig7AliasSizing(b *testing.B)       { benchExperiment(b, "fig7", fullOptions()) }
func BenchmarkFig8ListArrays(b *testing.B)        { benchExperiment(b, "fig8", fullOptions()) }
func BenchmarkFig9Latency(b *testing.B)           { benchExperiment(b, "fig9", fullOptions()) }
func BenchmarkTable3Area(b *testing.B)            { benchExperiment(b, "tab3", fullOptions()) }
func BenchmarkFig10CreationTime(b *testing.B)     { benchExperiment(b, "fig10", fullOptions()) }
func BenchmarkFig11IndexBits(b *testing.B)        { benchExperiment(b, "fig11", fullOptions()) }
func BenchmarkFig12Schedulers(b *testing.B)       { benchExperiment(b, "fig12", fullOptions()) }
func BenchmarkFig13Comparison(b *testing.B)       { benchExperiment(b, "fig13", fullOptions()) }
func BenchmarkAreaComparison(b *testing.B)        { benchExperiment(b, "area-ratio", fullOptions()) }
func BenchmarkExtraCore(b *testing.B)             { benchExperiment(b, "extracore", fullOptions()) }

// --- Quick variants on a benchmark subset ---

func BenchmarkQuickFig2(b *testing.B)  { benchExperiment(b, "fig2", quickOptions()) }
func BenchmarkQuickFig10(b *testing.B) { benchExperiment(b, "fig10", quickOptions()) }
func BenchmarkQuickFig12(b *testing.B) { benchExperiment(b, "fig12", quickOptions()) }
func BenchmarkQuickFig13(b *testing.B) { benchExperiment(b, "fig13", quickOptions()) }

// --- Sweep-engine benchmarks: full-evaluation regeneration ---
//
// One iteration regenerates every figure and table of the evaluation over the
// quick benchmark subset. The Sequential variant pins the worker pool to one
// worker (the pre-runner execution model); the Parallel variant uses
// GOMAXPROCS workers, demonstrating the wall-clock speedup of running the
// deduplicated union of all sweep points concurrently.

func benchRunAll(b *testing.B, workers int) {
	b.Helper()
	opt := quickOptions()
	opt.Workers = workers
	for i := 0; i < b.N; i++ {
		// A fresh cache each iteration so every iteration does the full
		// set of simulations.
		opt.Cache = experiments.NewCache()
		if err := experiments.RunAll(opt, io.Discard); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(opt.Cache.Len()), "points")
	}
}

func BenchmarkSweepRunAllSequential(b *testing.B) { benchRunAll(b, 1) }
func BenchmarkSweepRunAllParallel(b *testing.B)   { benchRunAll(b, 0) }

// --- Single-run benchmarks: one simulated execution per iteration ---

func benchmarkSingleRun(b *testing.B, benchmark string, kind core.Config) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := core.RunBenchmark(benchmark, kind)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.TasksExecuted)/res.Seconds/1e6, "Mtasks/simsec")
	}
}

func BenchmarkRunCholeskySoftware(b *testing.B) {
	benchmarkSingleRun(b, "cholesky", core.DefaultConfig(core.Software))
}

func BenchmarkRunCholeskyTDM(b *testing.B) {
	benchmarkSingleRun(b, "cholesky", core.DefaultConfig(core.TDM))
}

func BenchmarkRunQRTDM(b *testing.B) {
	benchmarkSingleRun(b, "qr", core.DefaultConfig(core.TDM))
}

func BenchmarkRunDedupTDMSuccessor(b *testing.B) {
	cfg := core.DefaultConfig(core.TDM)
	cfg.Scheduler = "successor"
	benchmarkSingleRun(b, "dedup", cfg)
}

// --- Micro-benchmarks of the hardware and simulation substrates ---

// BenchmarkMicroDMUAddDependence measures the functional cost of Algorithm 1
// on a warm DMU.
func BenchmarkMicroDMUAddDependence(b *testing.B) {
	unit := dmu.New(dmu.DefaultConfig())
	desc := func(i int) uint64 { return 0x7000_0000 + uint64(i)*320 }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := desc(i)
		if _, err := unit.CreateTask(d); err != nil {
			b.Fatal(err)
		}
		addr := uint64(0x9000_0000 + (i%512)*4096)
		if _, err := unit.AddDependence(d, addr, 4096, task.InOut); err != nil {
			b.Fatal(err)
		}
		if _, err := unit.SubmitTask(d); err != nil {
			b.Fatal(err)
		}
		// Retire immediately so the structures never fill.
		for {
			rt, _, ok := unit.GetReadyTask()
			if !ok {
				break
			}
			if _, err := unit.FinishTask(rt.DescAddr); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkMicroDMUWholeCholesky replays the complete Cholesky dependence
// stream through a standalone DMU (no timing simulation).
func BenchmarkMicroDMUWholeCholesky(b *testing.B) {
	bench, err := workloads.ByName("cholesky")
	if err != nil {
		b.Fatal(err)
	}
	prog := bench.GenerateOptimal(true, machine.Default())
	specs := prog.Tasks()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		unit := dmu.New(dmu.DefaultConfig())
		desc := func(id task.ID) uint64 { return 0x7000_0000 + uint64(id)*320 }
		retire := func() {
			rt, _, ok := unit.GetReadyTask()
			if !ok {
				b.Fatal("DMU full with empty ready queue")
			}
			if _, err := unit.FinishTask(rt.DescAddr); err != nil {
				b.Fatal(err)
			}
		}
		for _, s := range specs {
			d := desc(s.ID)
			for !unit.CanCreateTask(d) {
				retire()
			}
			if _, err := unit.CreateTask(d); err != nil {
				b.Fatal(err)
			}
			for _, dep := range s.Deps {
				for !unit.CanAddDependence(d, dep.Addr, dep.Size, dep.Dir) {
					retire()
				}
				if _, err := unit.AddDependence(d, dep.Addr, dep.Size, dep.Dir); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := unit.SubmitTask(d); err != nil {
				b.Fatal(err)
			}
		}
		for !unit.Quiescent() {
			retire()
		}
	}
	b.ReportMetric(float64(len(specs)), "tasks/op")
}

// BenchmarkMicroGoldenGraph measures building the reference dependence graph
// of the largest benchmark program.
func BenchmarkMicroGoldenGraph(b *testing.B) {
	prog := mustProgram(b, "streamcluster", true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := task.BuildProgramGraph(prog)
		if g.NumTasks() != prog.NumTasks() {
			b.Fatal("graph size mismatch")
		}
	}
}

// BenchmarkMicroWorkloadGeneration measures generating every benchmark
// program at its TDM-optimal granularity.
func BenchmarkMicroWorkloadGeneration(b *testing.B) {
	m := machine.Default()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total := 0
		for _, w := range workloads.All() {
			total += w.GenerateOptimal(true, m).NumTasks()
		}
		if total == 0 {
			b.Fatal("no tasks generated")
		}
	}
}

// BenchmarkMicroSimEngine measures the raw discrete-event engine: processes
// exchanging waits.
func BenchmarkMicroSimEngine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		for p := 0; p < 8; p++ {
			eng.Spawn(fmt.Sprintf("p%d", p), func(pr *sim.Proc) {
				for k := 0; k < 200; k++ {
					pr.Wait(10)
				}
			})
		}
		if _, err := eng.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMicroSchedulerThroughput measures push/pop throughput of each
// scheduling policy.
func BenchmarkMicroSchedulerThroughput(b *testing.B) {
	for _, name := range core.Schedulers() {
		b.Run(name, func(b *testing.B) {
			benchScheduler(b, name)
		})
	}
}

func benchScheduler(b *testing.B, name string) {
	specs := make([]*task.Spec, 256)
	for i := range specs {
		specs[i] = &task.Spec{ID: task.ID(i), Kernel: "k", Duration: 100}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pool, err := sched.New(name, 32)
		if err != nil {
			b.Fatal(err)
		}
		for j, s := range specs {
			pool.Push(&sched.ReadyTask{Spec: s, NumSuccs: j % 4, Affinity: j % 32})
		}
		for pool.Len() > 0 {
			if pool.Pop(i%32) == nil {
				b.Fatal("pop returned nil with non-empty pool")
			}
		}
	}
}

// --- small helpers ---

func mustProgram(b *testing.B, name string, tdm bool) *task.Program {
	b.Helper()
	w, err := workloads.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	return w.GenerateOptimal(tdm, machine.Default())
}

// BenchmarkMicroSpeedupAggregation exercises the statistics helpers used by
// every experiment table (geometric means over per-benchmark speedups).
func BenchmarkMicroSpeedupAggregation(b *testing.B) {
	values := make([]float64, 0, 1024)
	for i := 1; i <= 1024; i++ {
		values = append(values, stats.Speedup(int64(1000+i), 1000))
	}
	for i := 0; i < b.N; i++ {
		if stats.GeoMean(values) <= 0 {
			b.Fatal("geomean not positive")
		}
	}
}
